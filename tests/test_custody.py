"""SlotCellState: custody tracking, reconstruction, deficits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Custody, cells_of_line
from repro.core.custody import SlotCellState
from repro.params import PandasParams


@pytest.fixture
def params():
    return PandasParams(base_rows=8, base_cols=8, custody_rows=2, custody_cols=2, samples=4)


@pytest.fixture
def state(params):
    custody = Custody(rows=(0, 3), cols=(1, 5))
    samples = [200, 201, 202, 203]
    return SlotCellState(params, custody, samples)


def test_initial_state_empty(state):
    assert not state.consolidation_complete
    assert not state.sampling_complete
    assert len(state.have) == 0
    assert state.missing_samples() == {200, 201, 202, 203}


def test_add_cells_counts_new_and_duplicates(state):
    new, _rec = state.add_cells([0, 1, 2])
    assert new == 3
    new, _rec = state.add_cells([2, 3])
    assert new == 1
    assert state.duplicates_received == 1


def test_line_masks_track_positions(state, params):
    state.add_cells([0, 1, 5])  # row 0 cells at cols 0, 1, 5
    assert state.line_count(0) == 3
    # col 1 (line ext_rows+1) holds cell 1
    assert state.line_count(params.ext_rows + 1) == 1


def test_row_reconstructs_at_half(state, params):
    row_cells = cells_of_line(0, params.ext_rows, params.ext_cols)
    half = row_cells[: params.ext_cols // 2]
    new, reconstructed = state.add_cells(half)
    assert new == len(half)
    assert reconstructed >= params.ext_cols // 2
    assert state.line_complete(0)


def test_reconstruction_cascades_between_custody_lines(state, params):
    """Completing rows fills custody-column intersections too."""
    for line in (0, 3):
        state.add_cells(cells_of_line(line, params.ext_rows, params.ext_cols))
    # columns 1 and 5 now hold 2 cells each (from rows 0 and 3)
    assert state.line_count(params.ext_rows + 1) == 2


def test_consolidation_complete_when_all_lines_full(state, params):
    for line in state.custody_lines:
        state.add_cells(cells_of_line(line, params.ext_rows, params.ext_cols))
    assert state.consolidation_complete


def test_consolidation_via_half_of_each_line(state, params):
    for line in state.custody_lines:
        cells = cells_of_line(line, params.ext_rows, params.ext_cols)
        state.add_cells(cells[: len(cells) // 2])
    assert state.consolidation_complete  # reconstruction filled the rest


def test_sampling_complete(state):
    state.add_cells([200, 201, 202])
    assert not state.sampling_complete
    state.add_cells([203])
    assert state.sampling_complete


def test_samples_on_custody_lines_come_free(params):
    custody = Custody(rows=(0,), cols=(0,))
    # sample 3 lies on row 0
    state = SlotCellState(params, custody, [3])
    row_cells = cells_of_line(0, params.ext_rows, params.ext_cols)
    state.add_cells(row_cells[8:])  # half NOT containing cell 3
    assert state.sampling_complete  # reconstructed


def test_line_deficit(state, params):
    half = params.ext_cols // 2
    assert state.line_deficit(0) == half
    state.add_cells([0, 1, 2])
    assert state.line_deficit(0) == half - 3
    row_cells = cells_of_line(0, params.ext_rows, params.ext_cols)
    state.add_cells(row_cells[:half])
    assert state.line_deficit(0) == 0


def test_missing_in_line_order(state, params):
    state.add_cells([0, 2])
    missing = state.missing_in_line(0)
    assert missing[:3] == [1, 3, 4]
    assert len(missing) == params.ext_cols - 2


def test_complete_property(state, params):
    for line in state.custody_lines:
        state.add_cells(cells_of_line(line, params.ext_rows, params.ext_cols))
    assert not state.complete  # samples still missing
    state.add_cells([200, 201, 202, 203])
    assert state.complete


def test_has_all(state):
    state.add_cells([10, 11])
    assert state.has_all([10, 11])
    assert not state.has_all([10, 12])


@given(st.sets(st.integers(0, 255), max_size=120))
@settings(max_examples=50, deadline=None)
def test_reconstruction_closure_invariant(received):
    """After any ingest, no custody line sits in [half, full)."""
    params = PandasParams(base_rows=8, base_cols=8, custody_rows=2, custody_cols=2, samples=4)
    state = SlotCellState(params, Custody(rows=(1, 4), cols=(2, 7)), [9])
    state.add_cells(received)
    for line in state.custody_lines:
        count = state.line_count(line)
        length = params.ext_cols if line < params.ext_rows else params.ext_rows
        assert count == length or count < length // 2 or count >= 0
        assert not (length // 2 <= count < length)


@given(st.lists(st.integers(0, 255), max_size=80))
@settings(max_examples=50, deadline=None)
def test_duplicates_plus_new_equals_ingested(cells):
    params = PandasParams(base_rows=8, base_cols=8, custody_rows=1, custody_cols=1, samples=2)
    state = SlotCellState(params, Custody(rows=(0,), cols=(0,)), [30, 40])
    total_new = 0
    for cid in cells:
        new, _ = state.add_cells([cid])
        total_new += new
    assert total_new + state.duplicates_received == len(cells)
