"""End-to-end PANDAS scenario integration tests (small, dense grids)."""

from __future__ import annotations

import pytest

from repro.core.seeding import MinimalSeeding, RedundantSeeding, SingleSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def dense_params(samples=10):
    return PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=samples
    )


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=dense_params(),
        policy=RedundantSeeding(4),
        seed=3,
        slots=1,
        num_vertices=500,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestFaultFreeSlot:
    @pytest.fixture(scope="class")
    def scenario(self):
        return Scenario(make_config()).run()

    def test_everyone_seeds(self, scenario):
        dist = scenario.phase_distributions().seeding
        assert dist.misses == 0
        assert dist.count == 40

    def test_everyone_consolidates(self, scenario):
        dist = scenario.phase_distributions().consolidation
        assert dist.misses == 0

    def test_everyone_samples_within_deadline(self, scenario):
        dist = scenario.phase_distributions().sampling
        assert dist.misses == 0
        assert dist.fraction_within(4.0) == 1.0

    def test_phase_ordering(self, scenario):
        for (_slot, _node), times in scenario.metrics.phase_times.items():
            assert times.seeding <= times.consolidation

    def test_traffic_recorded(self, scenario):
        assert scenario.fetch_message_distribution().count > 0
        assert scenario.builder_egress_bytes(0) > 0


def test_policies_ordered_by_consolidation_speed():
    """Redundant seeding consolidates no slower than minimal (Fig. 9c)."""
    medians = {}
    for name, policy in (
        ("minimal", MinimalSeeding()),
        ("redundant", RedundantSeeding(4)),
    ):
        scenario = Scenario(make_config(policy=policy)).run()
        medians[name] = scenario.phase_distributions().consolidation.median
    assert medians["redundant"] <= medians["minimal"] * 1.25


def test_builder_egress_ordering():
    """minimal < single < redundant egress (Section 6.1 budgets)."""
    egress = {}
    for name, policy in (
        ("minimal", MinimalSeeding()),
        ("single", SingleSeeding()),
        ("redundant", RedundantSeeding(4)),
    ):
        scenario = Scenario(make_config(policy=policy)).run()
        egress[name] = scenario.builder_egress_bytes(0)
    assert egress["minimal"] < egress["single"] < egress["redundant"]


def test_multiple_slots_accumulate_metrics():
    scenario = Scenario(make_config(slots=2)).run()
    assert len(scenario.ctx.slot_starts) == 2
    sampled = scenario.phase_distributions().sampling
    assert sampled.count == 2 * 40


def test_determinism_same_seed():
    a = Scenario(make_config()).run().phase_distributions().sampling
    b = Scenario(make_config()).run().phase_distributions().sampling
    assert a.values == b.values


def test_different_seeds_differ():
    a = Scenario(make_config(seed=1)).run().phase_distributions().sampling
    b = Scenario(make_config(seed=2)).run().phase_distributions().sampling
    assert a.values != b.values


def test_block_gossip_distribution():
    scenario = Scenario(make_config(include_block_gossip=True)).run()
    block = scenario.block_distribution()
    assert block.misses == 0
    assert block.fraction_within(4.0) == 1.0


def test_zero_loss_faster_or_equal_completion():
    lossy = Scenario(make_config(loss_rate=0.15)).run()
    clean = Scenario(make_config(loss_rate=0.0)).run()
    assert (
        clean.phase_distributions().sampling.p99
        <= lossy.phase_distributions().sampling.p99 * 1.5
    )
