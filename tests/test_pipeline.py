"""Sustained multi-slot pipeline: overlap, churn, overload control."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.pipeline import PipelineScenario
from repro.experiments.scenario import ScenarioConfig
from repro.obs import TraceRecorder
from repro.params import PandasParams, RetryPolicy


def overload_params(**overrides):
    """Small dense grid with every overload-control knob engaged."""
    defaults = dict(
        base_rows=8,
        base_cols=8,
        custody_rows=4,
        custody_cols=4,
        samples=10,
        fetch_retry=RetryPolicy(),
        pending_request_limit=256,
        retrieval_admit_rate=50.0,
    )
    defaults.update(overrides)
    return PandasParams(**defaults)


def make_config(params=None, **overrides):
    defaults = dict(
        num_nodes=40,
        params=params or overload_params(),
        policy=RedundantSeeding(4),
        seed=3,
        slots=3,
        num_vertices=500,
        check_invariants=True,
        max_inbox=4096,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def make_pipeline(config=None, **knobs):
    defaults = dict(
        churn_fraction=0.1,
        retention_slots=2,
        probes_per_slot=2,
        client_rate=1_000_000.0,
        service_rate=500_000.0,
        max_backlog=2_000_000.0,
    )
    defaults.update(knobs)
    return PipelineScenario(config or make_config(), **defaults)


class TestSustainedPipeline:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_pipeline().run()

    def test_all_slots_hit_deadline_under_churn(self, scenario):
        hits = scenario.deadline_hit_by_slot()
        assert len(hits) == 3
        assert all(rate == 1.0 for rate in hits.values())

    def test_probes_complete_with_latency_percentiles(self, scenario):
        probe = scenario.report().probe
        assert probe["issued"] == 6
        assert probe["completed"] == 6
        assert 0.0 < probe["latency_p50"] <= probe["latency_p90"] <= probe["latency_p99"]

    def test_membership_churned_mid_stream(self, scenario):
        assert scenario.departed  # someone left while slots overlapped
        assert len(scenario.current_members) == 40  # and was replaced

    def test_all_slot_state_retired_after_drain(self, scenario):
        for node in scenario.nodes.values():
            assert node.pending_depth() == 0
        assert scenario._retired == 3

    def test_i5_invariant_checked_throughout(self, scenario):
        assert scenario.invariants is not None
        assert scenario.invariants.checks_run > 0

    def test_report_is_json_round_trippable(self, scenario):
        report = scenario.report()
        decoded = json.loads(json.dumps(report.to_dict(), default=float))
        assert decoded["slots"] == 3
        assert decoded["deadline_hit_rate"] == 1.0
        assert len(decoded["rows"]) == 3
        assert decoded["fingerprint"] == report.fingerprint


class TestGossipSeenBound:
    def test_seen_state_not_monotonic_across_pipeline_slots(self):
        """The sustained pipeline never calls ``_end_slot``, so before
        the retention wiring the block overlay's dedup sets grew for
        the whole run and kept churned-out members forever. Pin the
        fix: per-slot totals must shrink at least once (retirement at
        the retention window), never exceed a small multiple of the
        live population, and departed members must not be retained."""
        config = make_config(
            include_block_gossip=True, slots=6, check_invariants=False
        )
        pipeline = make_pipeline(config)
        overlay = pipeline.block_overlay
        assert overlay is not None
        per_slot = []
        record = pipeline._record_slot

        def record_and_sample(slot):
            record(slot)
            per_slot.append(overlay.seen_entries())

        pipeline._record_slot = record_and_sample
        pipeline.run()
        assert len(per_slot) == 6
        assert any(b < a for a, b in zip(per_slot, per_slot[1:])), (
            f"seen state grew monotonically: {per_slot}"
        )
        # each member holds at most one block id per retained slot, so
        # the total is bounded by population x (retention + in-flight)
        population = len(pipeline.nodes)
        assert max(per_slot) <= population * (pipeline.retention_slots + 2)
        for member in pipeline.departed:
            assert member not in overlay._seen, (
                f"departed member {member} still holds dedup state"
            )

    def test_churned_out_member_leaves_topic_and_mesh(self):
        config = make_config(
            include_block_gossip=True, slots=3, check_invariants=False
        )
        pipeline = make_pipeline(config)
        pipeline.run()
        overlay = pipeline.block_overlay
        for member in pipeline.departed:
            assert member not in overlay.topic_members("blocks")
            assert not overlay.mesh_neighbors("blocks", member)


class TestReplayDeterminism:
    def test_fingerprint_equal_across_two_runs(self):
        """Acceptance: a 3+ slot pipeline under churn + overload replays
        fingerprint-equal across two independent runs."""
        first = make_pipeline().run().report()
        second = make_pipeline().run().report()
        assert first.fingerprint == second.fingerprint
        assert first.to_dict() == second.to_dict()

    def test_different_seed_changes_fingerprint(self):
        first = make_pipeline().run().report()
        other = make_pipeline(make_config(seed=4)).run().report()
        assert first.fingerprint != other.fingerprint


class TestOverloadControl:
    def test_retrieval_shed_before_sampling(self):
        """Under 2x retrieval overload the pipeline degrades gracefully:
        retrieval-class work is shed, sampling keeps its deadline, the
        I5 invariant holds, and nothing deadlocks."""
        params = overload_params(
            retrieval_admit_rate=0.25, retrieval_admit_burst=1.0
        )
        scenario = make_pipeline(
            make_config(params=params),
            probes_per_slot=8,
            probe_max_concurrent=2,
            probe_defer_limit=2,
        ).run()
        report = scenario.report()
        assert report.sheds.get("retrieval_admission", 0.0) > 0
        assert "pending_sampling" not in report.sheds
        assert report.deadline_hit_rate == 1.0
        # the aggregate model sheds its 2x overload rather than queueing
        assert report.aggregate["shed_overflow"] > 0
        assert scenario.aggregate.backlog <= 2_000_000.0

    def test_aggregate_admission_rate_caps_intake(self):
        scenario = make_pipeline(
            service_rate=500_000.0,
            admit_rate_aggregate=250_000.0,
            client_rate=1_000_000.0,
        ).run()
        aggregate = scenario.report().aggregate
        assert aggregate["shed_admission"] > 0
        assert aggregate["admitted"] < aggregate["offered"]

    def test_sampling_priority_consumes_aggregate_capacity(self):
        """Sampling traffic eats serving capacity first: with a tiny
        serving tier the same client load backs up much further."""
        starved = make_pipeline(service_rate=50.0, client_rate=100.0,
                                max_backlog=None).run()
        roomy = make_pipeline(service_rate=500_000.0, client_rate=100.0,
                              max_backlog=None).run()
        assert starved.aggregate.peak_backlog > roomy.aggregate.peak_backlog

    def test_bounded_inbox_drops_without_deadlock(self):
        """A pathologically small transport inbox sheds datagrams but
        the run still completes and I5 still holds."""
        scenario = make_pipeline(make_config(max_inbox=8, slots=2)).run()
        report = scenario.report()
        assert report.datagrams_overflowed > 0
        assert report.queue_drops.get("inbox_overflow", 0.0) > 0
        # overflow never exceeded the bound (I5 would have raised)
        assert scenario.invariants is not None

    def test_client_rate_sequence_cycles_per_slot(self):
        scenario = make_pipeline(client_rate=[0.0, 600_000.0]).run()
        offered = scenario.aggregate.offered_total
        # slots 0 and 2 offer nothing; slot 1 offers 600k * 12s
        assert offered == pytest.approx(600_000.0 * 12.0)


class TestPipelineStructure:
    def test_epoch_rotation_mid_pipeline(self):
        params = overload_params(slots_per_epoch=2)
        scenario = make_pipeline(make_config(params=params, slots=4)).run()
        report = scenario.report()
        assert [row["epoch"] for row in report.rows] == [0, 0, 1, 1]
        assert report.deadline_hit_rate == 1.0

    def test_pipeline_slot_trace_events_emitted(self):
        tracer = TraceRecorder(kinds=["pipeline_slot"])
        make_pipeline(make_config(tracer=tracer)).run()
        events = [e for e in tracer.events if e.kind == "pipeline_slot"]
        assert [e.slot for e in events] == [0, 1, 2]
        assert all("live" in e.data and "shed" in e.data for e in events)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            make_pipeline(retention_slots=0)
        with pytest.raises(ValueError):
            make_pipeline(probes_per_slot=-1)
        with pytest.raises(ValueError):
            make_pipeline(probe_rows=0)

    def test_probe_addresses_never_collide_with_churn_joiners(self):
        scenario = make_pipeline(make_config(slots=2), churn_fraction=0.2).run()
        joiner_max = max(scenario.node_ids)
        probe_min = min(c.client_id for c in scenario.probes)
        assert joiner_max < probe_min


def test_cli_pipeline_json(capsys):
    from repro.cli import main

    code = main([
        "pipeline", "--nodes", "60", "--reduced", "32", "--slots", "2",
        "--churn", "0.1", "--check-invariants", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["slots"] == 2
    assert payload["deadline_hit_rate"] > 0
    assert "fingerprint" in payload and "probe" in payload
