"""Sybil-analysis math, validated against Monte-Carlo sampling."""

from __future__ import annotations

import random

import pytest

from repro.das.sybil import (
    cell_censorship_probability,
    expected_censorable_cells,
    line_assignment_probability,
    line_without_honest_custodian_probability,
    rotation_safety_factor,
)


def test_assignment_probability_full_params():
    # 16 custody lines over 1,024: 1/64
    assert line_assignment_probability(16, 1024) == pytest.approx(1 / 64)


def test_assignment_probability_validation():
    with pytest.raises(ValueError):
        line_assignment_probability(0, 10)
    with pytest.raises(ValueError):
        line_assignment_probability(20, 10)


def test_line_without_honest_custodian_decreases_with_honest_count():
    values = [
        line_without_honest_custodian_probability(n) for n in (100, 500, 1000, 10000)
    ]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_monte_carlo_agreement():
    """Analytic line-miss probability matches simulation of S."""
    honest, custody_lines, total_lines = 200, 16, 1024
    rng = random.Random(3)
    trials, misses = 3000, 0
    for _ in range(trials):
        # does any of `honest` nodes pick line 0 among its 16 of 1024?
        hit = False
        for _node in range(honest):
            if rng.random() < custody_lines / total_lines:
                hit = True
                break
        if not hit:
            misses += 1
    analytic = line_without_honest_custodian_probability(honest, custody_lines, total_lines)
    assert misses / trials == pytest.approx(analytic, abs=0.02)


def test_cell_censorship_needs_both_lines():
    p_line = line_without_honest_custodian_probability(300)
    assert cell_censorship_probability(300) == pytest.approx(p_line**2)


def test_censorship_negligible_at_realistic_scale():
    """At the paper's 10,000-node scale the expected number of
    honest-custodian-free cells is effectively zero."""
    assert expected_censorable_cells(10_000) < 1e-50


def test_censorship_material_at_tiny_scale():
    """...while at 100 nodes it is visibly non-zero — the small-scale
    coverage artifact the bench documentation warns about."""
    assert expected_censorable_cells(100) > 100


def test_rotation_safety_factor():
    # 6.4-minute epochs vs ~1-minute crawls: factor ~6.4
    assert rotation_safety_factor() == pytest.approx(6.4)
    with pytest.raises(ValueError):
        rotation_safety_factor(crawl_seconds=0)
