"""Sybil-analysis math, validated against Monte-Carlo sampling."""

from __future__ import annotations

import random

import pytest

from repro.core.assignment import CellAssignment
from repro.crypto.randao import RandaoBeacon
from repro.das.sybil import (
    cell_censorship_probability,
    expected_censorable_cells,
    line_assignment_probability,
    line_without_honest_custodian_probability,
    rotation_safety_factor,
    sampling_success_probability,
)
from repro.params import PandasParams


def test_assignment_probability_full_params():
    # 16 custody lines over 1,024: 1/64
    assert line_assignment_probability(16, 1024) == pytest.approx(1 / 64)


def test_assignment_probability_validation():
    with pytest.raises(ValueError):
        line_assignment_probability(0, 10)
    with pytest.raises(ValueError):
        line_assignment_probability(20, 10)


def test_line_without_honest_custodian_decreases_with_honest_count():
    values = [
        line_without_honest_custodian_probability(n) for n in (100, 500, 1000, 10000)
    ]
    assert all(a > b for a, b in zip(values, values[1:], strict=False))


def test_monte_carlo_agreement():
    """Analytic line-miss probability matches simulation of S."""
    honest, custody_lines, total_lines = 200, 16, 1024
    rng = random.Random(3)
    trials, misses = 3000, 0
    for _ in range(trials):
        # does any of `honest` nodes pick line 0 among its 16 of 1024?
        hit = False
        for _node in range(honest):
            if rng.random() < custody_lines / total_lines:
                hit = True
                break
        if not hit:
            misses += 1
    analytic = line_without_honest_custodian_probability(honest, custody_lines, total_lines)
    assert misses / trials == pytest.approx(analytic, abs=0.02)


def test_cell_censorship_needs_both_lines():
    p_line = line_without_honest_custodian_probability(300)
    assert cell_censorship_probability(300) == pytest.approx(p_line**2)


def test_censorship_negligible_at_realistic_scale():
    """At the paper's 10,000-node scale the expected number of
    honest-custodian-free cells is effectively zero."""
    assert expected_censorable_cells(10_000) < 1e-50


def test_censorship_material_at_tiny_scale():
    """...while at 100 nodes it is visibly non-zero — the small-scale
    coverage artifact the bench documentation warns about."""
    assert expected_censorable_cells(100) > 100


def test_empirical_censorship_rate_matches_analytic():
    """The analytic cell-censorship probability matches the *real*
    assignment ``S``: the measured fraction of cells with no honest
    custodian on either line, averaged over many epoch rotations.

    This is the same event that bounds honest sampling under a
    Byzantine adversary — with node-side defenses active, the only
    cells an honest node cannot fetch are exactly these."""
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=1, custody_cols=1, samples=2
    )
    honest = 30
    assignment = CellAssignment(params, RandaoBeacon(17))
    epochs, censored, total = 400, 0, 0
    for epoch in range(epochs):
        rows_covered, cols_covered = set(), set()
        for node in range(honest):
            custody = assignment.custody(node, epoch)
            rows_covered.update(custody.rows)
            cols_covered.update(custody.cols)
        empty_rows = params.ext_rows - len(rows_covered)
        empty_cols = params.ext_cols - len(cols_covered)
        censored += empty_rows * empty_cols
        total += params.ext_rows * params.ext_cols
    analytic = cell_censorship_probability(
        honest,
        custody_lines=params.custody_rows + params.custody_cols,
        total_lines=params.ext_rows + params.ext_cols,
    )
    assert censored / total == pytest.approx(analytic, abs=0.005)


def test_sampling_success_probability_algebra():
    p_cell = cell_censorship_probability(300)
    assert sampling_success_probability(300, samples=73) == pytest.approx(
        (1.0 - p_cell) ** 73
    )
    # no samples -> vacuous success; no honest nodes -> certain failure
    assert sampling_success_probability(300, samples=0) == 1.0
    assert sampling_success_probability(0, samples=1) == 0.0
    with pytest.raises(ValueError):
        sampling_success_probability(300, samples=-1)


def test_rotation_safety_factor():
    # 6.4-minute epochs vs ~1-minute crawls: factor ~6.4
    assert rotation_safety_factor() == pytest.approx(6.4)
    with pytest.raises(ValueError):
        rotation_safety_factor(crawl_seconds=0)
