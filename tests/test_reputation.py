"""Reputation ledger and token-bucket units (the Byzantine defenses)."""

from __future__ import annotations

import pytest

from repro.core.fetching import score_peers
from repro.core.reputation import (
    INVALID_WEIGHT,
    ReputationLedger,
    TokenBucket,
)


class TestReputationWeight:
    def test_unknown_peer_weighs_one(self):
        ledger = ReputationLedger()
        assert ledger.weight(7) == 1.0

    def test_valid_evidence_keeps_full_weight(self):
        ledger = ReputationLedger()
        ledger.record_valid(7, 50)
        assert ledger.weight(7) == 1.0

    def test_invalid_cells_collapse_weight(self):
        ledger = ReputationLedger(prior=8.0)
        ledger.record_invalid(7, 8)
        # weight = 8 / (8 + 8 * INVALID_WEIGHT)
        assert ledger.weight(7) == pytest.approx(8.0 / (8.0 + 8 * INVALID_WEIGHT))
        assert ledger.weight(7) < 0.25

    def test_single_timeout_barely_moves_weight(self):
        ledger = ReputationLedger(prior=8.0)
        ledger.record_timeout(7)
        assert ledger.weight(7) == pytest.approx(8.0 / 9.0)

    def test_valid_evidence_offsets_penalties(self):
        dirty = ReputationLedger()
        dirty.record_invalid(7, 2)
        redeemed = ReputationLedger()
        redeemed.record_invalid(7, 2)
        redeemed.record_valid(7, 40)
        assert redeemed.weight(7) > dirty.weight(7)


class TestQuarantine:
    def test_quarantine_trips_below_threshold(self):
        ledger = ReputationLedger(quarantine_threshold=0.25)
        ledger.observe_epoch(0)
        ledger.record_invalid(7, 8)
        assert ledger.weight(7) < 0.25
        assert ledger.quarantined(7)

    def test_no_quarantine_before_epoch_observed(self):
        # evidence arriving before the first epoch rollover only steers
        ledger = ReputationLedger()
        ledger.record_invalid(7, 20)
        assert not ledger.quarantined(7)

    def test_quarantine_is_epoch_scoped(self):
        ledger = ReputationLedger()
        ledger.observe_epoch(0)
        ledger.record_invalid(7, 20)
        assert ledger.quarantined(7)
        ledger.observe_epoch(1)
        assert not ledger.quarantined(7)

    def test_epoch_rollover_decays_counters(self):
        ledger = ReputationLedger(decay=0.5)
        ledger.observe_epoch(0)
        ledger.record_invalid(7, 4)
        before = ledger.weight(7)
        ledger.observe_epoch(1)
        assert ledger.stats[7].invalid == pytest.approx(2.0)
        assert ledger.weight(7) > before

    def test_observe_same_epoch_is_idempotent(self):
        ledger = ReputationLedger(decay=0.5)
        ledger.observe_epoch(0)
        ledger.record_timeout(7)
        ledger.observe_epoch(0)
        ledger.observe_epoch(0)
        assert ledger.stats[7].timeouts == 1.0

    def test_repeat_offender_requarantined_next_epoch(self):
        ledger = ReputationLedger()
        ledger.observe_epoch(0)
        ledger.record_invalid(7, 20)
        ledger.observe_epoch(1)
        assert not ledger.quarantined(7)  # probation
        ledger.record_invalid(7, 6)  # decayed counters + fresh evidence
        assert ledger.quarantined(7)


class TestQuarantineRedirectsTraffic:
    """The satellite check: reputation demonstrably steers Algorithm 1."""

    def test_weight_drop_reorders_score_peers(self):
        ledger = ReputationLedger()
        ledger.record_invalid(13, 4)
        weights = {peer: ledger.weight(peer) for peer in (12, 13)}
        scores = score_peers(
            targets={1, 2, 3},
            candidate_cells={12: {1, 2, 3}, 13: {1, 2, 3}},
            boost={},
            cb_boost=10_000,
            weights=weights,
        )
        # identical holdings, but the liar is out-scored
        assert scores[12] > scores[13]

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ReputationLedger(decay=1.5)
        with pytest.raises(ValueError):
            ReputationLedger(quarantine_threshold=1.0)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            bucket.allow(0.0)
        assert not bucket.allow(0.0)
        # 0.2 s at 10 tokens/s -> 2 tokens
        assert bucket.allow(0.2)
        assert bucket.allow(0.2)
        assert not bucket.allow(0.2)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        bucket.allow(0.0)
        # a long quiet period refills to burst, not beyond
        assert [bucket.allow(10.0) for _ in range(3)] == [True, True, False]

    def test_clock_never_runs_backwards_refill(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.allow(1.0)
        # an earlier timestamp must not mint tokens
        assert not bucket.allow(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
