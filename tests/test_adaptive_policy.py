"""Feedback-adaptive builder redundancy (Section 11 future work)."""

from __future__ import annotations

import pytest

from repro.core.adaptive_policy import AdaptiveRedundancyController


def test_starts_with_configured_r():
    controller = AdaptiveRedundancyController(r=4)
    assert controller.policy().copies == 4


def test_doubles_on_poor_completion():
    controller = AdaptiveRedundancyController(r=4)
    assert controller.observe(0.80) == 8


def test_capped_at_max():
    controller = AdaptiveRedundancyController(r=12, max_r=16)
    controller.observe(0.5)
    assert controller.r == 16
    controller.observe(0.5)
    assert controller.r == 16


def test_decays_after_calm_streak():
    controller = AdaptiveRedundancyController(r=8, calm_slots_before_decay=3)
    controller.observe(1.0)
    controller.observe(1.0)
    assert controller.r == 8  # not yet
    controller.observe(1.0)
    assert controller.r == 7


def test_calm_streak_resets_on_trouble():
    controller = AdaptiveRedundancyController(r=8, calm_slots_before_decay=2)
    controller.observe(1.0)
    controller.observe(0.98)  # between the water marks: streak resets
    controller.observe(1.0)
    assert controller.r == 8


def test_never_below_min():
    controller = AdaptiveRedundancyController(r=1, min_r=1, calm_slots_before_decay=1)
    controller.observe(1.0)
    assert controller.r == 1


def test_history_recorded():
    controller = AdaptiveRedundancyController(r=4)
    controller.observe(0.9)
    controller.observe(1.0)
    assert controller.history == [(4, 0.9), (8, 1.0)]


def test_invalid_fraction_rejected():
    with pytest.raises(ValueError):
        AdaptiveRedundancyController().observe(1.5)


def test_closed_loop_recovers_from_faults():
    """Simulated feedback: completion depends on r; the controller
    climbs until the network meets the deadline again."""

    def network_response(r: int) -> float:
        # a degraded network needing r >= 8 for full completion
        return min(1.0, 0.80 + 0.03 * r)

    controller = AdaptiveRedundancyController(r=2)
    for _ in range(6):
        controller.observe(network_response(controller.r))
    # the controller climbs to meet the deadline, then trims the excess;
    # wherever it settles, completion stays above the low-water mark
    assert controller.r > 2
    assert network_response(controller.r) >= controller.low_water
