"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_security_command(capsys):
    assert main(["security", "--grid", "64"]) == 0
    out = capsys.readouterr().out
    assert "64x64" in out
    assert "FP bound" in out


def test_security_with_explicit_samples(capsys):
    assert main(["security", "--grid", "128", "--samples", "50"]) == 0
    assert "s=50" in capsys.readouterr().out


def test_slot_command_small(capsys):
    code = main(
        [
            "slot",
            "--nodes", "40",
            "--reduced", "16",
            "--seed", "3",
            "--policy", "redundant",
        ]
    )
    out = capsys.readouterr().out
    assert "seeding" in out and "sampling" in out
    assert code in (0, 1)


def test_slot_with_plot(capsys):
    main(["slot", "--nodes", "40", "--reduced", "16", "--plot"])
    out = capsys.readouterr().out
    assert "deadline" in out  # the CDF legend


def test_figure_table1(capsys):
    assert main(["figure", "table1", "--nodes", "40", "--reduced", "16"]) == 0
    assert "round 1" in capsys.readouterr().out


def test_slot_with_faults_end_to_end(capsys):
    """The ``--faults`` spec drives the injector from the shell: the
    plan is echoed, realized fault counts are reported, and the online
    invariant checker runs to completion."""
    code = main(
        [
            "slot",
            "--nodes", "40",
            "--reduced", "16",
            "--seed", "3",
            "--faults", "loss=0.1,dup=0.05,crash=1@0.5:1.0",
            "--check-invariants",
        ]
    )
    out = capsys.readouterr().out
    assert "fault plan" in out
    assert "loss=0.1" in out
    assert "crash=1@0.5:1" in out
    assert "link_drop=" in out and "crash=1" in out and "restart=1" in out
    assert "invariants     ok" in out
    assert code in (0, 1)


def test_slot_with_malformed_faults_rejected():
    with pytest.raises(ValueError):
        main(["slot", "--nodes", "10", "--reduced", "16", "--faults", "meteor=1"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        main(["slot", "--nodes", "10", "--reduced", "16", "--policy", "bogus"])


def test_slot_json_output(capsys):
    import json

    code = main(["slot", "--nodes", "40", "--reduced", "16", "--seed", "3", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["nodes"] == 40
    assert "sampling" in payload["phases"]
    assert payload["phases"]["sampling"]["count"] == 40
    assert payload["messages_sent"] > 0
    assert code in (0, 1)


def test_slot_trace_rider_writes_jsonl(tmp_path, capsys):
    from repro.obs.timeline import lifecycle_problems, load_trace

    path = str(tmp_path / "slot.jsonl")
    main(["slot", "--nodes", "40", "--reduced", "16", "--seed", "3", "--trace", path])
    out = capsys.readouterr().out
    assert "trace:" in out
    events = load_trace(path)
    assert events
    assert lifecycle_problems(events) == []


def test_slot_profile_rider(capsys):
    main(["slot", "--nodes", "40", "--reduced", "16", "--seed", "3", "--profile"])
    out = capsys.readouterr().out
    assert "callback site" in out
    assert "events/sec" in out


def test_trace_command_end_to_end(tmp_path, capsys):
    import json

    from repro.obs.timeline import lifecycle_problems, load_trace

    jsonl = str(tmp_path / "trace.jsonl")
    chrome = str(tmp_path / "trace.json")
    code = main(
        [
            "trace",
            "--nodes", "40",
            "--reduced", "16",
            "--seed", "3",
            "--out", jsonl,
            "--chrome", chrome,
            "--report",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "lifecycle      OK" in out
    assert "causal timeline" in out
    assert "why:" in out
    events = load_trace(jsonl)
    assert lifecycle_problems(events) == []
    with open(chrome) as fh:
        document = json.load(fh)
    assert document["traceEvents"]


def test_trace_command_kind_filter(tmp_path, capsys):
    from repro.obs.timeline import load_trace

    path = str(tmp_path / "queries.jsonl")
    main(
        [
            "trace",
            "--nodes", "40",
            "--reduced", "16",
            "--seed", "3",
            "--kinds", "query_issue,query_response,query_timeout,query_cancel",
            "--out", path,
        ]
    )
    out = capsys.readouterr().out
    assert "filtered" in out
    kinds = {e["kind"] for e in load_trace(path)}
    assert "query_issue" in kinds
    assert "net_send" not in kinds


def test_profile_command(capsys):
    code = main(["profile", "--nodes", "40", "--reduced", "16", "--seed", "3", "--top", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "callback site" in out
    assert "events/sec" in out
