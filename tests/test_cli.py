"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_security_command(capsys):
    assert main(["security", "--grid", "64"]) == 0
    out = capsys.readouterr().out
    assert "64x64" in out
    assert "FP bound" in out


def test_security_with_explicit_samples(capsys):
    assert main(["security", "--grid", "128", "--samples", "50"]) == 0
    assert "s=50" in capsys.readouterr().out


def test_slot_command_small(capsys):
    code = main(
        [
            "slot",
            "--nodes", "40",
            "--reduced", "16",
            "--seed", "3",
            "--policy", "redundant",
        ]
    )
    out = capsys.readouterr().out
    assert "seeding" in out and "sampling" in out
    assert code in (0, 1)


def test_slot_with_plot(capsys):
    main(["slot", "--nodes", "40", "--reduced", "16", "--plot"])
    out = capsys.readouterr().out
    assert "deadline" in out  # the CDF legend


def test_figure_table1(capsys):
    assert main(["figure", "table1", "--nodes", "40", "--reduced", "16"]) == 0
    assert "round 1" in capsys.readouterr().out


def test_slot_with_faults_end_to_end(capsys):
    """The ``--faults`` spec drives the injector from the shell: the
    plan is echoed, realized fault counts are reported, and the online
    invariant checker runs to completion."""
    code = main(
        [
            "slot",
            "--nodes", "40",
            "--reduced", "16",
            "--seed", "3",
            "--faults", "loss=0.1,dup=0.05,crash=1@0.5:1.0",
            "--check-invariants",
        ]
    )
    out = capsys.readouterr().out
    assert "fault plan" in out
    assert "loss=0.1" in out
    assert "crash=1@0.5:1" in out
    assert "link_drop=" in out and "crash=1" in out and "restart=1" in out
    assert "invariants     ok" in out
    assert code in (0, 1)


def test_slot_with_malformed_faults_rejected():
    with pytest.raises(ValueError):
        main(["slot", "--nodes", "10", "--reduced", "16", "--faults", "meteor=1"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        main(["slot", "--nodes", "10", "--reduced", "16", "--policy", "bogus"])
