"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_call_after_advances_clock(sim):
    fired = []
    sim.call_after(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_call_at_absolute_time(sim):
    fired = []
    sim.call_at(3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]


def test_events_fire_in_time_order(sim):
    order = []
    sim.call_after(2.0, lambda: order.append("b"))
    sim.call_after(1.0, lambda: order.append("a"))
    sim.call_after(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order(sim):
    order = []
    for tag in ("first", "second", "third"):
        sim.call_at(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["first", "second", "third"]


def test_scheduling_in_past_raises(sim):
    sim.call_after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.call_after(-0.1, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.call_after(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.active


def test_cancel_is_idempotent(sim):
    event = sim.call_after(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.call_after(1.0, lambda: fired.append("early"))
    sim.call_after(5.0, lambda: fired.append("late"))
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the window end
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_idle(sim):
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.call_after(1.0, chain)

    sim.call_after(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_limits_execution(sim):
    fired = []
    for i in range(10):
        sim.call_after(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_step_executes_single_event(sim):
    fired = []
    sim.call_after(1.0, lambda: fired.append("a"))
    sim.call_after(2.0, lambda: fired.append("b"))
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_events_processed_counter(sim):
    for i in range(5):
        sim.call_after(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reset_clears_queue_and_clock(sim):
    sim.call_after(1.0, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_not_reentrant(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.call_after(1.0, reenter)
    sim.run()


def test_zero_delay_event_fires_at_current_time(sim):
    fired = []
    sim.call_after(1.0, lambda: sim.call_after(0.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [1.0]


def test_reset_restarts_sequence_counter(sim):
    """Regression: ``reset()`` used to keep the old ``_seq`` counter,
    so a reset simulator broke timestamp ties differently from a fresh
    one and replays after reset were not bit-identical."""
    for _ in range(5):
        sim.call_after(1.0, lambda: None)
    sim.run()
    sim.reset()
    event = sim.call_after(1.0, lambda: None)
    assert event.seq == 0


def test_reset_simulator_matches_fresh_simulator():
    def trace_of(sim: Simulator) -> list:
        trace = []
        for tag in ("a", "b", "c"):
            sim.call_at(1.0, lambda t=tag: trace.append((t, sim.events_processed)))
        sim.run()
        return trace

    fresh = Simulator()
    reused = Simulator()
    reused.call_after(0.5, lambda: None)
    reused.run()
    reused.reset()
    assert trace_of(reused) == trace_of(fresh)


def test_determinism_across_instances():
    def run_once() -> list:
        sim = Simulator()
        trace = []
        sim.call_after(0.5, lambda: trace.append(("a", sim.now)))
        sim.call_after(0.5, lambda: trace.append(("b", sim.now)))
        sim.call_after(0.2, lambda: sim.call_after(0.3, lambda: trace.append(("c", sim.now))))
        sim.run()
        return trace

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# cancellation at run boundaries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("queue", ["calendar", "heap"])
def test_cancelled_event_at_until_boundary_is_discarded(queue):
    """A cancelled event popped exactly when ``until`` stops the run
    must be dropped, not re-queued: resuming the run later must not
    resurrect it. Regression test for the formerly duplicated
    cancelled-pop paths (one per stop condition)."""
    sim = Simulator(queue=queue)
    fired = []
    doomed = sim.call_at(1.0, lambda: fired.append("doomed"))
    sim.call_at(1.0, lambda: fired.append("kept"))
    sim.call_at(2.0, lambda: fired.append("late"))
    doomed.cancel()
    sim.run(until=1.0)
    assert fired == ["kept"]
    sim.run()
    assert fired == ["kept", "late"]


@pytest.mark.parametrize("queue", ["calendar", "heap"])
def test_cancelled_event_at_max_events_boundary(queue):
    sim = Simulator(queue=queue)
    fired = []
    doomed = sim.call_at(0.5, lambda: fired.append("doomed"))
    doomed.cancel()
    sim.call_at(0.5, lambda: fired.append("a"))
    sim.call_at(0.6, lambda: fired.append("b"))
    sim.run(max_events=1)
    assert fired == ["a"]
    assert sim.events_processed == 1
    sim.run()
    assert fired == ["a", "b"]


# ----------------------------------------------------------------------
# reserved sequence numbers
# ----------------------------------------------------------------------
def test_reserve_seq_fixes_tie_order(sim):
    """An event scheduled late under a reserved seq sorts exactly where
    a call_at at reservation time would have."""
    fired = []
    reserved = sim.reserve_seq()
    sim.call_at(1.0, lambda: fired.append("second"))
    sim.call_at(1.0, lambda: fired.append("reserved"), seq=reserved)
    sim.run()
    assert fired == ["reserved", "second"]


def test_reserve_seq_advances_shared_counter(sim):
    reserved = sim.reserve_seq()
    event = sim.call_at(1.0, lambda: None)
    assert event.seq == reserved + 1


def test_reserved_seq_event_cancellable(sim):
    fired = []
    reserved = sim.reserve_seq()
    event = sim.call_at(1.0, lambda: fired.append("x"), seq=reserved)
    event.cancel()
    sim.run()
    assert fired == []
