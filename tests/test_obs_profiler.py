"""Callback-site profiling: attribution, labels, reporting."""

from __future__ import annotations

import functools

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.obs import CallbackProfiler
from repro.obs.profiler import callback_site
from repro.params import PandasParams


def module_level_fn():
    return 42


class Widget:
    def method(self):
        return 1

    def __call__(self):
        return 2


def test_callback_site_names_plain_functions():
    assert callback_site(module_level_fn) == f"{__name__}:module_level_fn"


def test_callback_site_unwraps_bound_methods_and_partials():
    widget = Widget()
    assert callback_site(widget.method) == f"{__name__}:Widget.method"
    wrapped = functools.partial(functools.partial(module_level_fn))
    assert callback_site(wrapped) == f"{__name__}:module_level_fn"


def test_callback_site_falls_back_to_type():
    assert callback_site(Widget()) == f"{__name__}:Widget"


def test_profiler_attributes_calls_to_sites():
    profiler = CallbackProfiler()
    for _ in range(3):
        profiler.run(module_level_fn)
    profiler.run(Widget().method)
    assert profiler.events == 4
    by_site = {s.site: s for s in profiler.table()}
    assert by_site[f"{__name__}:module_level_fn"].calls == 3
    assert by_site[f"{__name__}:Widget.method"].calls == 1
    assert all(s.seconds >= 0.0 for s in by_site.values())


def test_profiler_charges_time_even_when_callback_raises():
    profiler = CallbackProfiler()

    def boom():
        raise RuntimeError("kaput")

    with pytest.raises(RuntimeError):
        profiler.run(boom)
    assert profiler.events == 1


def test_format_prints_table_and_headline():
    profiler = CallbackProfiler()
    profiler.run(module_level_fn)
    text = profiler.format(top=5)
    assert "callback site" in text
    assert "module_level_fn" in text
    assert "events/sec" in text


def test_profiler_maps_a_real_run():
    """A profiled scenario attributes every simulator event somewhere,
    and the hot sites are real protocol code paths."""
    profiler = CallbackProfiler()
    config = ScenarioConfig(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=9,
        slots=1,
        num_vertices=300,
        profiler=profiler,
    )
    Scenario(config).run()
    assert profiler.events > 0
    sites = [s.site for s in profiler.table(top=50)]
    assert sum(s.calls for s in profiler.table(top=50)) == profiler.events
    assert any(site.startswith("repro.") for site in sites)
