"""Property-based tests for the byte-level erasure pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.blob import Blob, BlobReconstructionError, ExtendedBlob
from repro.erasure.matrix import RowColumnAvailability, cell_id


@st.composite
def small_blob(draw):
    rows = draw(st.integers(2, 4))
    cols = draw(st.integers(2, 4))
    cell_bytes = draw(st.sampled_from([2, 4]))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, 256, size=(rows, cols, cell_bytes), dtype=np.uint8)
    return Blob(cells)


@given(blob=small_blob(), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_reconstructs_whenever_availability_says_recoverable(blob, seed):
    """The byte-level decoder and the combinatorial tracker agree:
    a random surviving subset either recovers exactly the original
    extended blob, or raises — matching ``recoverable()``."""
    ext = blob.extend()
    total = ext.ext_rows * ext.ext_cols
    rng = np.random.default_rng(seed)
    keep_fraction = rng.uniform(0.3, 0.9)
    keep = {int(c) for c in rng.permutation(total)[: int(total * keep_fraction)]}

    tracker = RowColumnAvailability(ext.ext_rows, ext.ext_cols)
    tracker.add_many(keep)
    known = {cid: ext.cell_by_id(cid) for cid in keep}

    if tracker.recoverable():
        rebuilt = ExtendedBlob.reconstruct(
            known, blob.base_rows, blob.base_cols, blob.cell_bytes
        )
        assert rebuilt == ext
    else:
        with pytest.raises(BlobReconstructionError):
            ExtendedBlob.reconstruct(
                known, blob.base_rows, blob.base_cols, blob.cell_bytes
            )


@given(blob=small_blob())
@settings(max_examples=20, deadline=None)
def test_quadrant_always_recovers(blob):
    """Figure 3 left as a property: the original quadrant suffices."""
    ext = blob.extend()
    known = {
        cell_id(r, c, ext.ext_cols): ext.cell(r, c)
        for r in range(blob.base_rows)
        for c in range(blob.base_cols)
    }
    rebuilt = ExtendedBlob.reconstruct(known, blob.base_rows, blob.base_cols, blob.cell_bytes)
    assert np.array_equal(rebuilt.to_blob().cells, blob.cells)


@given(blob=small_blob())
@settings(max_examples=20, deadline=None)
def test_maximal_withholding_always_blocks(blob):
    """Figure 3 right as a property: withholding (R+1)x(C+1) blocks."""
    ext = blob.extend()
    withheld_rows = blob.base_rows + 1
    withheld_cols = blob.base_cols + 1
    known = {}
    for r in range(ext.ext_rows):
        for c in range(ext.ext_cols):
            if r >= withheld_rows or c >= withheld_cols:
                known[cell_id(r, c, ext.ext_cols)] = ext.cell(r, c)
    with pytest.raises(BlobReconstructionError):
        ExtendedBlob.reconstruct(known, blob.base_rows, blob.base_cols, blob.cell_bytes)


@given(blob=small_blob())
@settings(max_examples=15, deadline=None)
def test_extension_roundtrip_property(blob):
    assert np.array_equal(blob.extend().to_blob().cells, blob.cells)
