"""MetricsRecorder and Counter2D."""

from __future__ import annotations


from repro.sim.metrics import Counter2D, MetricsRecorder


class TestCounter2D:
    def test_add_and_get(self):
        counter = Counter2D()
        counter.add(0, "n1", 2.0)
        counter.add(0, "n1")
        assert counter.get(0, "n1") == 3.0
        assert counter.get(0, "n2") == 0.0

    def test_per_node_filters_slot(self):
        counter = Counter2D()
        counter.add(0, "a", 1.0)
        counter.add(1, "a", 5.0)
        counter.add(0, "b", 2.0)
        assert counter.per_node(0) == {"a": 1.0, "b": 2.0}

    def test_values_and_total(self):
        counter = Counter2D()
        counter.add(0, "a", 1.0)
        counter.add(1, "b", 2.0)
        assert sorted(counter.values()) == [1.0, 2.0]
        assert counter.total() == 3.0
        assert counter.total(0) == 1.0


class TestPhaseMarks:
    def test_marks_are_first_write_wins(self):
        metrics = MetricsRecorder()
        metrics.mark_seeding(0, "n", 1.0)
        metrics.mark_seeding(0, "n", 9.0)
        assert metrics.phase_times[(0, "n")].seeding == 1.0

    def test_all_phases_recorded_independently(self):
        metrics = MetricsRecorder()
        metrics.mark_seeding(0, "n", 1.0)
        metrics.mark_consolidation(0, "n", 2.0)
        metrics.mark_sampling(0, "n", 3.0)
        metrics.mark_block(0, "n", 0.5)
        times = metrics.phase_times[(0, "n")]
        assert (times.seeding, times.consolidation, times.sampling, times.block) == (
            1.0,
            2.0,
            3.0,
            0.5,
        )

    def test_phase_series_includes_misses(self):
        metrics = MetricsRecorder()
        metrics.mark_seeding(0, "a", 1.0)
        metrics.mark_sampling(0, "a", 2.0)
        metrics.mark_seeding(0, "b", 1.5)  # b never samples
        series = metrics.phase_series("sampling")
        assert sorted(str(v) for v in series) == ["2.0", "None"]

    def test_phase_series_slot_filter(self):
        metrics = MetricsRecorder()
        metrics.mark_sampling(0, "a", 1.0)
        metrics.mark_sampling(1, "a", 2.0)
        assert metrics.phase_series("sampling", slots=[1]) == [2.0]


class TestTraffic:
    def test_send_receive_accounting(self):
        metrics = MetricsRecorder()
        metrics.record_send(0, "n", 100)
        metrics.record_send(0, "n", 50)
        metrics.record_receive(0, "n", 70)
        assert metrics.messages_sent.get(0, "n") == 2
        assert metrics.bytes_sent.get(0, "n") == 150
        assert metrics.bytes_received.get(0, "n") == 70

    def test_builder_accounting(self):
        metrics = MetricsRecorder()
        metrics.record_builder_send(0, 1000)
        metrics.record_builder_send(0, 500)
        assert metrics.builder_bytes_sent[0] == 1500
        assert metrics.builder_messages_sent[0] == 2


class TestRoundTable:
    def test_aggregates_mean_and_std(self):
        metrics = MetricsRecorder()
        metrics.record_round(0, "a", 1, messages_sent=10)
        metrics.record_round(0, "b", 1, messages_sent=20)
        table = metrics.round_table()
        mean, std = table[1]["messages_sent"]
        assert mean == 15.0
        assert std == 5.0

    def test_round_cap(self):
        metrics = MetricsRecorder()
        metrics.record_round(0, "a", 1, messages_sent=1)
        metrics.record_round(0, "a", 9, messages_sent=1)
        assert 9 not in metrics.round_table(max_round=4)

    def test_repeated_record_accumulates(self):
        metrics = MetricsRecorder()
        metrics.record_round(0, "a", 1, cells_requested=5)
        metrics.record_round(0, "a", 1, cells_requested=3)
        mean, _ = metrics.round_table()[1]["cells_requested"]
        assert mean == 8.0


class TestOverloadCounters:
    def test_shed_and_drop_counters_accumulate(self):
        metrics = MetricsRecorder()
        metrics.record_shed("retrieval_admission")
        metrics.record_shed("retrieval_admission", 2.0)
        metrics.record_queue_drop("inbox_overflow", 5.0)
        assert metrics.shed_counts["retrieval_admission"] == 3.0
        assert metrics.queue_drop_counts["inbox_overflow"] == 5.0
        summary = metrics.summary()
        assert summary["sheds"] == {"retrieval_admission": 3.0}
        assert summary["queue_drops"] == {"inbox_overflow": 5.0}

    def test_queue_depth_gauge_keeps_high_water_mark(self):
        metrics = MetricsRecorder()
        metrics.observe_queue_depth("pending_requests", 3)
        metrics.observe_queue_depth("pending_requests", 7)
        metrics.observe_queue_depth("pending_requests", 2)
        assert metrics.queue_depth_peaks == {"pending_requests": 7}

    def test_snapshot_shape_unchanged_without_overload_data(self):
        """Legacy runs must keep their exact historical snapshot shape
        (the DENSE_PIN fingerprint protection): the overload section is
        appended only once an overload counter actually fires."""
        legacy = MetricsRecorder()
        legacy.record_send(0, "n", 100)
        baseline = legacy.fingerprint()

        loaded = MetricsRecorder()
        loaded.record_send(0, "n", 100)
        assert loaded.fingerprint() == baseline  # no overload data yet
        loaded.record_shed("retrieval_admission")
        assert len(loaded.snapshot()) == len(legacy.snapshot()) + 1
        assert loaded.fingerprint() != baseline

    def test_overload_counters_change_fingerprint(self):
        first = MetricsRecorder()
        first.record_queue_drop("inbox_overflow")
        second = MetricsRecorder()
        second.record_queue_drop("inbox_overflow", 2.0)
        assert first.fingerprint() != second.fingerprint()
