"""Fault-injection behaviour: dead nodes and inconsistent views."""

from __future__ import annotations


from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def dense_params():
    return PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=dense_params(),
        policy=RedundantSeeding(8),
        seed=5,
        slots=1,
        num_vertices=400,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestDeadNodes:
    def test_dead_set_size(self):
        scenario = Scenario(make_config(dead_fraction=0.25))
        assert len(scenario.dead_nodes) == 10
        assert scenario.live_node_count == 30

    def test_dead_nodes_receive_nothing(self):
        scenario = Scenario(make_config(dead_fraction=0.25)).run()
        for dead in scenario.dead_nodes:
            assert scenario.metrics.messages_received.get(0, dead) == 0

    def test_dead_nodes_excluded_from_distributions(self):
        scenario = Scenario(make_config(dead_fraction=0.25)).run()
        assert scenario.sampling_distribution().count == 30

    def test_builder_still_seeds_dead_nodes(self):
        """The builder is unaware of failures and wastes seed cells on
        them (the paper's fault model)."""
        scenario = Scenario(make_config(dead_fraction=0.25))
        sent_to = set()
        scenario.network.on_send.append(lambda d: sent_to.add(d.dst))
        scenario.run_slot(0)
        assert scenario.dead_nodes & sent_to

    def test_correct_nodes_still_complete_with_some_dead(self):
        scenario = Scenario(make_config(dead_fraction=0.2)).run()
        sampling = scenario.sampling_distribution()
        assert sampling.fraction_within(12.0) > 0.9


class TestOutOfViewNodes:
    def test_views_have_requested_size(self):
        scenario = Scenario(make_config(out_of_view_fraction=0.3))
        for node in scenario.nodes.values():
            assert node.view is not None
            # 30% out of view -> 70% of 40 = 28 kept (+self if absent)
            assert len(node.view) in (28, 29)

    def test_views_differ_between_nodes(self):
        scenario = Scenario(make_config(out_of_view_fraction=0.3))
        views = {frozenset(node.view) for node in scenario.nodes.values()}
        assert len(views) > 1  # inconsistent, as in the paper

    def test_zero_fraction_means_complete_view(self):
        scenario = Scenario(make_config(out_of_view_fraction=0.0))
        assert all(node.view is None for node in scenario.nodes.values())

    def test_nodes_only_query_their_view(self):
        scenario = Scenario(make_config(out_of_view_fraction=0.4))
        from repro.core.messages import CellRequest

        violations = []

        def check(dgram):
            if isinstance(dgram.payload, CellRequest):
                view = scenario.nodes[dgram.src].view
                if view is not None and dgram.dst not in view:
                    violations.append(dgram)

        scenario.network.on_send.append(check)
        scenario.run_slot(0)
        assert violations == []

    def test_moderate_out_of_view_still_mostly_completes(self):
        scenario = Scenario(make_config(out_of_view_fraction=0.2)).run()
        sampling = scenario.sampling_distribution()
        assert sampling.fraction_within(12.0) > 0.9


def test_combined_faults_do_not_crash():
    scenario = Scenario(
        make_config(dead_fraction=0.2, out_of_view_fraction=0.2)
    ).run()
    assert scenario.sampling_distribution().count == 32
