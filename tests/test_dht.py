"""Kademlia: XOR metric, k-buckets, iterative lookups, ENR directory."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.enr import EnrDirectory, node_id_for_address
from repro.dht.kademlia import KademliaNode
from repro.dht.routing import RoutingTable, bucket_index, xor_distance
from tests.conftest import make_network

IDS = st.integers(min_value=0, max_value=2**256 - 1)


class TestXorMetric:
    def test_identity(self):
        assert xor_distance(5, 5) == 0

    @given(a=IDS, b=IDS)
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)

    @given(a=IDS, b=IDS, c=IDS)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        """XOR satisfies d(a,c) <= d(a,b) XOR d(b,c) <= d(a,b)+d(b,c)."""
        assert xor_distance(a, c) == xor_distance(a, b) ^ xor_distance(b, c)
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)

    @given(a=IDS, b=IDS)
    @settings(max_examples=50)
    def test_unique_zero(self, a, b):
        assert (xor_distance(a, b) == 0) == (a == b)


class TestRoutingTable:
    def test_bucket_index_is_log_distance(self):
        assert bucket_index(0b1000, 0b1001) == 0
        assert bucket_index(0, 1 << 200) == 200

    def test_bucket_of_self_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(7, 7)

    def test_insert_and_closest(self):
        table = RoutingTable(own_id=0, k=4)
        for node_id in (1, 2, 3, 1 << 100, 1 << 101):
            table.insert(node_id)
        assert table.closest(0, 3) == [1, 2, 3]

    def test_bucket_capacity(self):
        table = RoutingTable(own_id=0, k=2)
        # ids 4..7 share bucket 2
        assert table.insert(4)
        assert table.insert(5)
        assert not table.insert(6)  # bucket full
        assert len(table) == 2

    def test_self_not_inserted(self):
        table = RoutingTable(own_id=9)
        assert not table.insert(9)

    def test_duplicate_not_inserted(self):
        table = RoutingTable(own_id=0)
        assert table.insert(5)
        assert not table.insert(5)

    def test_remove(self):
        table = RoutingTable(own_id=0)
        table.insert(5)
        table.remove(5)
        assert len(table) == 0

    def test_populate_counts(self):
        table = RoutingTable(own_id=0, k=16)
        inserted = table.populate(range(1, 50))
        assert inserted == len(table)


class TestEnrDirectory:
    def test_register_and_lookup(self):
        directory = EnrDirectory()
        record = directory.register(7)
        assert directory.by_id(record.node_id).address == 7
        assert directory.address_of(record.node_id) == 7

    def test_ids_are_stable_hashes(self):
        assert node_id_for_address(3) == node_id_for_address(3)
        assert node_id_for_address(3) != node_id_for_address(4)

    def test_unregister(self):
        directory = EnrDirectory()
        record = directory.register(7)
        directory.unregister(7)
        assert directory.by_id(record.node_id) is None
        assert len(directory) == 0

    def test_crawl_completeness(self):
        directory = EnrDirectory()
        for address in range(100):
            directory.register(address)
        view = directory.crawl(random.Random(1), completeness=0.8)
        assert len(view) == 80
        assert directory.crawl(random.Random(1), completeness=1.0) == set(range(100))

    def test_crawl_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            EnrDirectory().crawl(random.Random(1), completeness=0.0)


def build_dht(sim, count=40, loss=0.0):
    net = make_network(sim, loss=loss, latency=0.005)
    directory = EnrDirectory()
    nodes = {}
    for address in range(count):
        directory.register(address)
    for address in range(count):
        node = KademliaNode(sim, net, directory, address, rng=random.Random(address))
        net.register(address, address, node.on_datagram, None, None)
        nodes[address] = node
    for node in nodes.values():
        node.bootstrap_from_directory()
    return net, directory, nodes


class TestKademliaProtocol:
    def test_store_places_value_at_closest(self, sim):
        _net, directory, nodes = build_dht(sim)
        key = node_id_for_address(12345, namespace=9)
        results = []
        nodes[0].store(key, 1000, replicas=4, callback=results.append)
        sim.run(until=5.0)
        holders = [a for a, n in nodes.items() if key in n.storage]
        assert len(holders) == 4
        # holders are among the globally closest ids to the key
        by_distance = sorted(nodes, key=lambda a: directory.record_for(a).node_id ^ key)
        assert set(holders) <= set(by_distance[:8])

    def test_get_finds_stored_value(self, sim):
        _net, _directory, nodes = build_dht(sim)
        key = node_id_for_address(777, namespace=2)
        nodes[0].store(key, 2048, replicas=3)
        sim.run(until=5.0)
        results = []
        nodes[30].get(key, results.append)
        sim.run(until=10.0)
        assert results[0].found_value
        assert results[0].value_size == 2048

    def test_get_missing_value_returns_closest(self, sim):
        _net, _directory, nodes = build_dht(sim)
        key = node_id_for_address(31337, namespace=3)
        results = []
        nodes[5].get(key, results.append)
        sim.run(until=5.0)
        assert not results[0].found_value
        assert len(results[0].closest) > 0

    def test_lookup_converges_toward_target(self, sim):
        _net, directory, nodes = build_dht(sim)
        target = node_id_for_address(999, namespace=5)
        results = []
        nodes[3].lookup(target, results.append)
        sim.run(until=5.0)
        found = results[0].closest
        by_distance = sorted(
            (directory.record_for(a).node_id for a in nodes), key=lambda i: i ^ target
        )
        # the true closest id should be discovered
        assert by_distance[0] in found

    def test_lookup_survives_loss(self, sim):
        _net, _directory, nodes = build_dht(sim, loss=0.2)
        key = node_id_for_address(55, namespace=1)
        nodes[0].store(key, 100, replicas=8)
        sim.run(until=8.0)
        results = []
        nodes[20].get(key, results.append)
        sim.run(until=20.0)
        assert results and results[0].found_value

    def test_rpc_accounting(self, sim):
        _net, _directory, nodes = build_dht(sim)
        results = []
        nodes[0].lookup(node_id_for_address(1, namespace=7), results.append)
        sim.run(until=5.0)
        assert results[0].rpcs_sent >= 1
