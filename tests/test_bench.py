"""Unit tests for the benchmark runner and its regression gate."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import (
    PRE_SCALE_UP_BASELINE,
    bench_scale,
    check_against_baseline,
    next_bench_path,
    run_bench,
)


def _snapshot(rows):
    return {"schema": 1, "scales": rows, "pre_scale_up_baseline": PRE_SCALE_UP_BASELINE}


def _row(nodes=100, reduced=0, seed=7, eps=1000.0, fingerprint="aa" * 32):
    return {
        "nodes": nodes,
        "reduced": reduced,
        "seed": seed,
        "wall_s": 1.0,
        "events": int(eps),
        "events_per_sec": eps,
        "fingerprint": fingerprint,
    }


@pytest.fixture
def baseline_path(tmp_path):
    path = tmp_path / "BENCH_1.json"
    path.write_text(json.dumps(_snapshot([_row()])))
    return path


def test_check_passes_when_within_regression_budget(baseline_path):
    report = _snapshot([_row(eps=800.0)])  # -20%, inside the 25% budget
    assert check_against_baseline(report, baseline_path) == []


def test_check_fails_on_large_events_per_sec_regression(baseline_path):
    report = _snapshot([_row(eps=700.0)])  # -30%
    failures = check_against_baseline(report, baseline_path)
    assert len(failures) == 1
    assert "below baseline" in failures[0]


def test_check_fails_on_fingerprint_drift(baseline_path):
    report = _snapshot([_row(fingerprint="bb" * 32)])
    failures = check_against_baseline(report, baseline_path)
    assert len(failures) == 1
    assert "behaviour changed" in failures[0]


def test_check_ignores_scales_missing_from_baseline(baseline_path):
    report = _snapshot([_row(nodes=500, eps=1.0)])
    assert check_against_baseline(report, baseline_path) == []


def test_check_keys_on_nodes_reduced_and_seed(baseline_path):
    # same node count but a reduced grid is a different configuration
    report = _snapshot([_row(reduced=4, eps=1.0, fingerprint="cc" * 32)])
    assert check_against_baseline(report, baseline_path) == []


def test_check_respects_custom_max_regression(baseline_path):
    report = _snapshot([_row(eps=899.0)])  # -10.1%
    assert check_against_baseline(report, baseline_path, max_regression=0.10)
    assert not check_against_baseline(report, baseline_path, max_regression=0.15)


def test_check_gates_telemetry_overhead_absolutely(baseline_path):
    report = _snapshot([_row()])
    report["telemetry_overhead"] = {
        "nodes": 100,
        "plain_wall_s": 1.0,
        "telemetry_wall_s": 1.4,
        "overhead_ratio": 1.4,
    }
    failures = check_against_baseline(report, baseline_path)
    assert len(failures) == 1
    assert "observability budget" in failures[0]
    assert check_against_baseline(report, baseline_path, max_obs_overhead=1.5) == []
    report["telemetry_overhead"]["overhead_ratio"] = 1.1
    assert check_against_baseline(report, baseline_path) == []


def test_check_records_but_does_not_gate_trace_overhead(baseline_path):
    # full per-event trace emission is a debugging mode, not an
    # always-on tax: the ratio is tracked in the snapshot, never gated
    report = _snapshot([_row()])
    report["trace_overhead"] = {
        "nodes": 100,
        "plain_wall_s": 1.0,
        "traced_wall_s": 2.0,
        "overhead_ratio": 2.0,
    }
    assert check_against_baseline(report, baseline_path) == []


def test_next_bench_path_skips_existing_snapshots(tmp_path):
    assert next_bench_path(tmp_path).name == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_2.json").write_text("{}")
    assert next_bench_path(tmp_path).name == "BENCH_3.json"


def test_bench_scale_measures_a_real_run():
    row = bench_scale(20, reduced=16)
    assert row["nodes"] == 20
    assert row["events"] > 0
    assert row["wall_s"] > 0
    assert len(row["fingerprint"]) == 64
    # same configuration, same behaviour: only the timing may differ
    again = bench_scale(20, reduced=16)
    assert again["fingerprint"] == row["fingerprint"]
    assert again["events"] == row["events"]


def test_run_bench_annotates_full_grid_1k_speedup(monkeypatch):
    import repro.experiments.bench as bench_mod

    def fake_bench_scale(nodes, seed=7, reduced=0):
        return _row(nodes=nodes, reduced=reduced, seed=seed, eps=10_000.0)

    monkeypatch.setattr(bench_mod, "bench_scale", fake_bench_scale)
    report = run_bench([100, 1000], trace_overhead=False, telemetry_overhead=False)
    by_nodes = {row["nodes"]: row for row in report["scales"]}
    assert "speedup_vs_pre_scale_up" not in by_nodes[100]
    expected = round(PRE_SCALE_UP_BASELINE["wall_s"] / 1.0, 2)
    assert by_nodes[1000]["speedup_vs_pre_scale_up"] == expected
    assert report["pre_scale_up_baseline"] == PRE_SCALE_UP_BASELINE
