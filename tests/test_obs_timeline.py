"""Timeline reconstruction: timelines, rankings, the causal report."""

from __future__ import annotations

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.obs import JsonlSink, TraceRecorder
from repro.obs.timeline import (
    build_timelines,
    causal_report,
    load_trace,
    phase_completions,
    slowest_nodes,
)
from repro.params import PandasParams


def traced_scenario(seed=9, **overrides):
    rec = TraceRecorder()
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
        tracer=rec,
    )
    defaults.update(overrides)
    scenario = Scenario(ScenarioConfig(**defaults)).run()
    return scenario, [e.to_dict() for e in rec.events]


def test_build_timelines_groups_and_orders():
    events = [
        {"t": 2.0, "slot": 0, "node": 1, "kind": "phase"},
        {"t": 1.0, "slot": 0, "node": 1, "kind": "seed_recv"},
        {"t": 0.5, "slot": 0, "node": 2, "kind": "seed_recv"},
        {"t": 0.0, "slot": -1, "node": -1, "kind": "net_send"},
    ]
    timelines = build_timelines(events)
    assert set(timelines) == {(0, 1), (0, 2), (-1, -1)}
    assert [e["t"] for e in timelines[(0, 1)]] == [1.0, 2.0]


def test_slowest_nodes_ranks_misses_first():
    events = [
        {"t": 1.0, "slot": 0, "node": 1, "kind": "phase", "phase": "sampling", "at": 1.0},
        {"t": 2.0, "slot": 0, "node": 2, "kind": "phase", "phase": "sampling", "at": 2.0},
        # node 3 appears in the slot but never completes sampling
        {"t": 0.1, "slot": 0, "node": 3, "kind": "seed_recv", "at": 0.1},
    ]
    ranked = slowest_nodes(events, slot=0, phase="sampling", count=3)
    assert ranked == [(3, None), (2, 2.0), (1, 1.0)]


def test_phase_completions_from_trace_match_metrics():
    scenario, events = traced_scenario()
    completions = phase_completions(events)
    for (slot, node), times in scenario.metrics.phase_times.items():
        if times.sampling is None:
            continue
        traced = completions.get((slot, node), {}).get("sampling")
        assert traced is not None
        assert abs(traced - times.sampling) < 1e-9


def test_causal_report_explains_a_node():
    scenario, events = traced_scenario()
    ranked = slowest_nodes(events, slot=0, phase="sampling", count=1)
    node, _at = ranked[0]
    lines = causal_report(events, 0, node)
    text = "\n".join(lines)
    assert "seed:" in text
    assert "cells:" in text
    assert "round 1 at" in text
    assert "why:" in text
    assert "peer(s) queried" in text


def test_causal_report_elides_long_round_tails():
    events = []
    for rnd in range(1, 30):
        events.append(
            {
                "t": rnd * 0.1,
                "slot": 0,
                "node": 7,
                "kind": "fetch_round",
                "round": rnd,
                "targets": 1,
                "queries": 1,
            }
        )
    lines = causal_report(events, 0, 7)
    round_lines = [ln for ln in lines if ln.startswith("round ")]
    assert len(round_lines) == 10
    assert any("more round(s)" in ln for ln in lines)


def test_load_trace_round_trips_jsonl(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    rec = TraceRecorder(sinks=[JsonlSink(path)])
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=9,
        slots=1,
        num_vertices=300,
        tracer=rec,
    )
    Scenario(ScenarioConfig(**defaults)).run()
    rec.close()
    loaded = load_trace(path)
    live = [e.to_dict() for e in rec.events]
    assert loaded == live
