"""Unit tests for the declarative fault plan and its CLI spec parser."""

from __future__ import annotations

import pytest

from repro.faults.plan import CrashWindow, FaultPlan, PartitionWindow, SlowResponders


class TestPlanValidation:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.describe() == "none"

    def test_loss_out_of_range(self):
        with pytest.raises(ValueError):
            FaultPlan(loss=1.0)
        with pytest.raises(ValueError):
            FaultPlan(loss=-0.1)

    def test_duplication_out_of_range(self):
        with pytest.raises(ValueError):
            FaultPlan(duplication=1.5)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            FaultPlan(jitter=-0.01)

    def test_crash_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashWindow(crash_at=2.0, restart_at=1.0)
        with pytest.raises(ValueError):
            CrashWindow(crash_at=2.0, restart_at=2.0)

    def test_permanent_crash_allowed(self):
        window = CrashWindow(crash_at=1.0)
        assert window.restart_at is None

    def test_partition_needs_positive_duration(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=0.0, duration=0.0, fraction=0.5)

    def test_partition_fraction_bounds(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=0.0, duration=1.0, fraction=0.0)
        with pytest.raises(ValueError):
            PartitionWindow(start=0.0, duration=1.0, fraction=1.0)

    def test_partition_pinned_nodes_skip_fraction(self):
        window = PartitionWindow(start=0.0, duration=1.0, nodes=(1, 2))
        assert window.end == 1.0

    def test_slow_needs_positive_delay(self):
        with pytest.raises(ValueError):
            SlowResponders(count=1, extra_delay=0.0)


class TestSpecParser:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.parse(
            "loss=0.05,dup=0.01,jitter=0.02,crash=2@1.0:2.0,"
            "partition=0.25@1.0+0.5,slow=3@0.05"
        )
        assert plan.loss == 0.05
        assert plan.duplication == 0.01
        assert plan.jitter == 0.02
        assert plan.crashes == (CrashWindow(crash_at=1.0, restart_at=2.0, count=2),)
        assert plan.partitions == (
            PartitionWindow(start=1.0, duration=0.5, fraction=0.25),
        )
        assert plan.slow == (SlowResponders(count=3, extra_delay=0.05),)

    def test_permanent_crash_spec(self):
        plan = FaultPlan.parse("crash=1@0.5")
        assert plan.crashes[0].restart_at is None

    def test_repeated_entries_accumulate(self):
        plan = FaultPlan.parse("crash=1@0.5:1.0,crash=2@2.0:3.0")
        assert len(plan.crashes) == 2
        assert plan.crashes[1].count == 2

    def test_whitespace_and_empty_entries_tolerated(self):
        plan = FaultPlan.parse(" loss=0.1 , ,dup=0.2 ")
        assert plan.loss == 0.1
        assert plan.duplication == 0.2

    @pytest.mark.parametrize(
        "spec",
        [
            "loss",  # no key=value
            "loss=abc",  # not a float
            "crash=2",  # missing window
            "partition=0.5@1.0",  # missing duration
            "slow=3",  # missing delay
            "meteor=1",  # unknown kind
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_describe_mentions_every_component(self):
        plan = FaultPlan.parse("loss=0.05,crash=2@1:2,partition=0.2@1+0.5,slow=1@0.05")
        text = plan.describe()
        for fragment in ("loss=0.05", "crash=2@1:2", "partition=0.2@1+0.5", "slow=1@0.05"):
            assert fragment in text
