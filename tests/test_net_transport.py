"""Unit tests for the lossy UDP-like transport."""

from __future__ import annotations

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.transport import Network
from tests.conftest import make_network


def _register_sink(net, address, vertex=None, up=None, down=None):
    # distinct vertices by default so pairs see the model latency
    inbox = []
    net.register(
        address, address if vertex is None else vertex, inbox.append, up, down
    )
    return inbox


def test_basic_delivery(sim, lossless_network):
    inbox = _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.send(2, 1, "hello", 100)
    sim.run()
    assert len(inbox) == 1
    assert inbox[0].payload == "hello"
    assert inbox[0].src == 2


def test_delivery_time_includes_latency(sim, lossless_network):
    times = []
    lossless_network.register(1, 1, lambda d: times.append(sim.now), None, None)
    _register_sink(lossless_network, 2)
    lossless_network.send(2, 1, "x", 100)
    sim.run()
    assert times == [pytest.approx(0.01)]


def test_uplink_serialization_delays_delivery(sim):
    net = make_network(sim)
    times = []
    net.register(1, 1, lambda d: times.append(sim.now), None, None)
    net.register(2, 2, lambda d: None, 1e6, None)  # 1 MB/s uplink
    net.send(2, 1, "big", 500_000)
    sim.run()
    assert times == [pytest.approx(0.5 + 0.01)]


def test_downlink_serialization_delays_delivery(sim):
    net = make_network(sim)
    times = []
    net.register(1, 1, lambda d: times.append(sim.now), None, 1e6)
    net.register(2, 2, lambda d: None, None, None)
    net.send(2, 1, "big", 1_000_000)
    sim.run()
    assert times == [pytest.approx(0.01 + 1.0)]


def test_consecutive_sends_queue_at_uplink(sim):
    net = make_network(sim)
    times = []
    net.register(1, 1, lambda d: times.append(sim.now), None, None)
    net.register(2, 2, lambda d: None, 1e6, None)
    net.send(2, 1, "a", 1_000_000)
    net.send(2, 1, "b", 1_000_000)
    sim.run()
    assert times[0] == pytest.approx(1.01)
    assert times[1] == pytest.approx(2.01)


def test_unknown_destination_is_silent(sim, lossless_network):
    _register_sink(lossless_network, 1)
    lossless_network.send(1, 999, "void", 100)
    sim.run()
    assert lossless_network.datagrams_lost == 1


def test_unknown_sender_raises(sim, lossless_network):
    with pytest.raises(ValueError):
        lossless_network.send(999, 1, "x", 10)


def test_duplicate_registration_raises(sim, lossless_network):
    _register_sink(lossless_network, 1)
    with pytest.raises(ValueError):
        lossless_network.register(1, 0, lambda d: None, None, None)


def test_non_positive_size_raises(sim, lossless_network):
    _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    with pytest.raises(ValueError):
        lossless_network.send(1, 2, "x", 0)


def test_killed_endpoint_receives_nothing(sim, lossless_network):
    inbox = _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.kill(1)
    lossless_network.send(2, 1, "x", 10)
    sim.run()
    assert inbox == []
    assert not lossless_network.is_alive(1)


def test_killed_endpoint_sends_nothing(sim, lossless_network):
    inbox = _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.kill(2)
    lossless_network.send(2, 1, "x", 10)
    sim.run()
    assert inbox == []


def test_loss_rate_statistics(sim):
    net = Network(sim, ConstantLatency(0.001, 10), loss_rate=0.3, rng=random.Random(1))
    received = []
    net.register(1, 1, lambda d: received.append(d), None, None)
    net.register(2, 2, lambda d: None, None, None)
    for _ in range(2000):
        net.send(2, 1, "x", 10)
    sim.run()
    assert 0.6 < len(received) / 2000 < 0.8


def test_reliable_send_skips_loss(sim):
    net = Network(sim, ConstantLatency(0.001, 10), loss_rate=0.9, rng=random.Random(1))
    received = []
    net.register(1, 1, lambda d: received.append(d), None, None)
    net.register(2, 2, lambda d: None, None, None)
    for _ in range(50):
        net.send(2, 1, "x", 10, reliable=True)
    sim.run()
    assert len(received) == 50


def test_reliable_send_still_fails_to_dead_nodes(sim):
    net = make_network(sim)
    inbox = _register_sink(net, 1)
    _register_sink(net, 2)
    net.kill(1)
    net.send(2, 1, "x", 10, reliable=True)
    sim.run()
    assert inbox == []


def test_invalid_loss_rate_rejected(sim):
    with pytest.raises(ValueError):
        Network(sim, ConstantLatency(0.01, 4), loss_rate=1.0)


def test_observers_fire(sim, lossless_network):
    sent, delivered = [], []
    lossless_network.on_send.append(lambda d: sent.append(d))
    lossless_network.on_deliver.append(lambda d: delivered.append(d))
    _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.send(1, 2, "x", 10)
    sim.run()
    assert len(sent) == 1
    assert len(delivered) == 1


def test_counters(sim, lossless_network):
    _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.send(1, 2, "x", 10)
    lossless_network.send(1, 404, "x", 10)
    sim.run()
    assert lossless_network.datagrams_sent == 2
    assert lossless_network.datagrams_delivered == 1
    assert lossless_network.datagrams_lost == 1


# ----------------------------------------------------------------------
# bounded inbox (max_inbox) — the transport half of invariant I5
# ----------------------------------------------------------------------

def _bounded_network(sim, max_inbox, delivery="batched", loss=0.0, seed=7):
    return Network(
        sim,
        ConstantLatency(0.01, 16),
        loss_rate=loss,
        rng=random.Random(seed),
        delivery=delivery,
        max_inbox=max_inbox,
    )


class TestBoundedInbox:
    @pytest.mark.parametrize("delivery", ["batched", "per-datagram"])
    def test_excess_concurrent_sends_tail_drop(self, sim, delivery):
        net = _bounded_network(sim, max_inbox=3, delivery=delivery)
        inbox = _register_sink(net, 1)
        _register_sink(net, 2)
        for i in range(8):
            net.send(2, 1, i, 10)
        # all eight resolve at send time; only three fit the queue
        assert net.queue_depth(1) == 3
        assert net.endpoint(1).overflowed == 5
        assert net.datagrams_overflowed == 5
        sim.run()
        assert [d.payload for d in inbox] == [0, 1, 2]  # FIFO survivors
        assert net.queue_depth(1) == 0
        assert net.datagrams_delivered == 3
        assert net.datagrams_lost == 5

    def test_overflow_reports_drop_reason(self, sim):
        net = _bounded_network(sim, max_inbox=1)
        _register_sink(net, 1)
        _register_sink(net, 2)
        drops = []
        net.on_drop.append(lambda d, reason: drops.append((d.payload, reason)))
        net.send(2, 1, "kept", 10)
        net.send(2, 1, "shed", 10)
        sim.run()
        assert drops == [("shed", "overflow")]

    def test_depth_frees_up_as_datagrams_deliver(self, sim):
        net = _bounded_network(sim, max_inbox=1)
        inbox = _register_sink(net, 1)
        _register_sink(net, 2)
        net.send(2, 1, "a", 10)
        sim.run()  # drain: depth back to zero
        net.send(2, 1, "b", 10)
        sim.run()
        assert [d.payload for d in inbox] == ["a", "b"]
        assert net.datagrams_overflowed == 0

    def test_duplicate_copy_can_overflow_alone(self, sim):
        # per-copy check: the original squeaks in, the duplicate drops
        net = _bounded_network(sim, max_inbox=1)
        inbox = _register_sink(net, 1)
        _register_sink(net, 2)
        net.fault_filter = lambda dgram, reliable: (0.0, 0.0)
        net.send(2, 1, "x", 10)
        sim.run()
        assert len(inbox) == 1
        assert net.datagrams_overflowed == 1
        assert net.datagrams_duplicated == 0  # the dropped copy is not counted

    def test_modes_drop_identical_datagrams(self, sim):
        from repro.sim.engine import Simulator

        outcomes = []
        for delivery in ("batched", "per-datagram"):
            local = Simulator()
            net = _bounded_network(local, max_inbox=4, delivery=delivery, loss=0.2)
            inbox = _register_sink(net, 1)
            _register_sink(net, 2)
            for i in range(40):
                net.send(2, 1, i, 10)
            local.run()
            outcomes.append(
                (
                    [d.payload for d in inbox],
                    net.datagrams_overflowed,
                    net.datagrams_delivered,
                    net.datagrams_lost,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_max_queue_depth_tracks_live_peak(self, sim):
        net = _bounded_network(sim, max_inbox=None)
        _register_sink(net, 1)
        _register_sink(net, 2)
        for i in range(5):
            net.send(2, 1, i, 10)
        assert net.max_queue_depth() == 5
        sim.run()
        assert net.max_queue_depth() == 0
        assert net.queue_depth(404) == 0  # unknown address reads as empty

    def test_non_positive_max_inbox_rejected(self, sim):
        with pytest.raises(ValueError):
            _bounded_network(sim, max_inbox=0)
        with pytest.raises(ValueError):
            _bounded_network(sim, max_inbox=-4)
