"""Unit tests for the lossy UDP-like transport."""

from __future__ import annotations

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.transport import Network
from tests.conftest import make_network


def _register_sink(net, address, vertex=None, up=None, down=None):
    # distinct vertices by default so pairs see the model latency
    inbox = []
    net.register(
        address, address if vertex is None else vertex, inbox.append, up, down
    )
    return inbox


def test_basic_delivery(sim, lossless_network):
    inbox = _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.send(2, 1, "hello", 100)
    sim.run()
    assert len(inbox) == 1
    assert inbox[0].payload == "hello"
    assert inbox[0].src == 2


def test_delivery_time_includes_latency(sim, lossless_network):
    times = []
    lossless_network.register(1, 1, lambda d: times.append(sim.now), None, None)
    _register_sink(lossless_network, 2)
    lossless_network.send(2, 1, "x", 100)
    sim.run()
    assert times == [pytest.approx(0.01)]


def test_uplink_serialization_delays_delivery(sim):
    net = make_network(sim)
    times = []
    net.register(1, 1, lambda d: times.append(sim.now), None, None)
    net.register(2, 2, lambda d: None, 1e6, None)  # 1 MB/s uplink
    net.send(2, 1, "big", 500_000)
    sim.run()
    assert times == [pytest.approx(0.5 + 0.01)]


def test_downlink_serialization_delays_delivery(sim):
    net = make_network(sim)
    times = []
    net.register(1, 1, lambda d: times.append(sim.now), None, 1e6)
    net.register(2, 2, lambda d: None, None, None)
    net.send(2, 1, "big", 1_000_000)
    sim.run()
    assert times == [pytest.approx(0.01 + 1.0)]


def test_consecutive_sends_queue_at_uplink(sim):
    net = make_network(sim)
    times = []
    net.register(1, 1, lambda d: times.append(sim.now), None, None)
    net.register(2, 2, lambda d: None, 1e6, None)
    net.send(2, 1, "a", 1_000_000)
    net.send(2, 1, "b", 1_000_000)
    sim.run()
    assert times[0] == pytest.approx(1.01)
    assert times[1] == pytest.approx(2.01)


def test_unknown_destination_is_silent(sim, lossless_network):
    _register_sink(lossless_network, 1)
    lossless_network.send(1, 999, "void", 100)
    sim.run()
    assert lossless_network.datagrams_lost == 1


def test_unknown_sender_raises(sim, lossless_network):
    with pytest.raises(ValueError):
        lossless_network.send(999, 1, "x", 10)


def test_duplicate_registration_raises(sim, lossless_network):
    _register_sink(lossless_network, 1)
    with pytest.raises(ValueError):
        lossless_network.register(1, 0, lambda d: None, None, None)


def test_non_positive_size_raises(sim, lossless_network):
    _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    with pytest.raises(ValueError):
        lossless_network.send(1, 2, "x", 0)


def test_killed_endpoint_receives_nothing(sim, lossless_network):
    inbox = _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.kill(1)
    lossless_network.send(2, 1, "x", 10)
    sim.run()
    assert inbox == []
    assert not lossless_network.is_alive(1)


def test_killed_endpoint_sends_nothing(sim, lossless_network):
    inbox = _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.kill(2)
    lossless_network.send(2, 1, "x", 10)
    sim.run()
    assert inbox == []


def test_loss_rate_statistics(sim):
    net = Network(sim, ConstantLatency(0.001, 10), loss_rate=0.3, rng=random.Random(1))
    received = []
    net.register(1, 1, lambda d: received.append(d), None, None)
    net.register(2, 2, lambda d: None, None, None)
    for _ in range(2000):
        net.send(2, 1, "x", 10)
    sim.run()
    assert 0.6 < len(received) / 2000 < 0.8


def test_reliable_send_skips_loss(sim):
    net = Network(sim, ConstantLatency(0.001, 10), loss_rate=0.9, rng=random.Random(1))
    received = []
    net.register(1, 1, lambda d: received.append(d), None, None)
    net.register(2, 2, lambda d: None, None, None)
    for _ in range(50):
        net.send(2, 1, "x", 10, reliable=True)
    sim.run()
    assert len(received) == 50


def test_reliable_send_still_fails_to_dead_nodes(sim):
    net = make_network(sim)
    inbox = _register_sink(net, 1)
    _register_sink(net, 2)
    net.kill(1)
    net.send(2, 1, "x", 10, reliable=True)
    sim.run()
    assert inbox == []


def test_invalid_loss_rate_rejected(sim):
    with pytest.raises(ValueError):
        Network(sim, ConstantLatency(0.01, 4), loss_rate=1.0)


def test_observers_fire(sim, lossless_network):
    sent, delivered = [], []
    lossless_network.on_send.append(lambda d: sent.append(d))
    lossless_network.on_deliver.append(lambda d: delivered.append(d))
    _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.send(1, 2, "x", 10)
    sim.run()
    assert len(sent) == 1
    assert len(delivered) == 1


def test_counters(sim, lossless_network):
    _register_sink(lossless_network, 1)
    _register_sink(lossless_network, 2)
    lossless_network.send(1, 2, "x", 10)
    lossless_network.send(1, 404, "x", 10)
    sim.run()
    assert lossless_network.datagrams_sent == 2
    assert lossless_network.datagrams_delivered == 1
    assert lossless_network.datagrams_lost == 1
