"""RL003 negative fixture: ordered iteration, or no order-sensitive sink."""

from typing import Dict, List, Set


class Node:
    def __init__(self) -> None:
        self.peers: Set[int] = set()
        self.order: List[int] = []
        self.mesh: Dict[int, Set[int]] = {}

    def flood(self, transport, message) -> None:
        for peer in sorted(self.peers):  # sorted launders hash order
            transport.send(peer, message)

    def flood_known_order(self, transport, message) -> None:
        for peer in self.order:  # lists carry their order in the program
            transport.send(peer, message)

    def draw(self, rng):
        return rng.choice(sorted(self.peers))

    def census(self) -> int:
        total = 0
        for peer in self.peers:  # order-insensitive accounting: fine
            total += peer
        return total

    def tally(self) -> Dict[int, int]:
        # dict views without an RNG sink are insertion-ordered: fine
        return {topic: len(links) for topic, links in self.mesh.items()}
