"""RL001 negative fixture: randomness drawn from registry streams."""

import random


class Sampler:
    def __init__(self, rng: random.Random) -> None:
        # referencing random.Random (the class) is allowed: building a
        # seeded instance is exactly what the registry does
        self.rng = rng or random.Random(42)

    def jitter(self) -> float:
        return self.rng.random() * 0.05

    def pick_peer(self, peers):
        return self.rng.choice(sorted(peers))
