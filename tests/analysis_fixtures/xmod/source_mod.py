"""The nondeterministic source: set order materialized into a list."""


def custody_order(index: set) -> list:
    return list(index)


def custody_order_sorted(index: set) -> list:
    return sorted(index)  # the clean twin: explicit order
