"""The protocol sink: a transport send over whatever order arrives."""


def relay(transport, peers) -> None:
    for peer in peers:
        transport.send(peer, b"column")
