"""Cross-module RL007 fixture package: the source lives in
``source_mod``, the sink in ``sink_mod``, and only ``driver`` connects
them — no single file contains the whole flow."""
