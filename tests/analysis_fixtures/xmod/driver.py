"""Wires source to sink across module boundaries.

``run_bad`` routes the set-ordered list into the relay (one RL007
finding, anchored at the source in ``source_mod``); ``run_good`` sorts
at the boundary and is silent."""

from xmod.sink_mod import relay
from xmod.source_mod import custody_order, custody_order_sorted


def run_bad(transport, index: set) -> None:
    relay(transport, custody_order(index))


def run_good(transport, index: set) -> None:
    relay(transport, custody_order_sorted(index))
