"""RL001 positive fixture: retry-backoff jitter from the global stream.

The sustained pipeline's deadline-aware retry path jitters its
exponential backoff. Drawing that jitter from the process-global
``random`` module makes every retry wave land at a different simulated
time on each run — the exact regression that breaks bit-identical
replay of `repro pipeline` fingerprints.
"""

import random


class Retrier:
    def __init__(self, base: float, multiplier: float) -> None:
        self.base = base
        self.multiplier = multiplier
        self.waves = 0

    def next_backoff(self) -> float:
        self.waves += 1
        delay = self.base * self.multiplier**self.waves
        return delay * (1.0 + 0.5 * random.random())  # global stream: finding

    def reseed_between_waves(self) -> None:
        random.seed(self.waves)  # global reseed: finding
