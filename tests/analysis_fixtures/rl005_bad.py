"""RL005 positive fixture: float equality on simulated time."""


def expired(sim, stats) -> bool:
    return sim.now == stats.deadline  # float equality on time: finding


def is_fresh(event, reference) -> bool:
    return event.started_at != reference.started_at  # finding


def at_origin(t: float) -> bool:
    return t == 0.0  # float-literal comparison on time: finding
