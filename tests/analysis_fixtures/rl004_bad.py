"""RL004 positive fixture: trace kinds missing from the catalog."""


def report(tracer, sim, node: int) -> None:
    tracer.emit("fetch_startt", t=sim.now, node=node)  # typo: finding


class Fetcher:
    def __init__(self, ctx) -> None:
        self.ctx = ctx

    def _trace(self, kind: str, **data) -> None:
        self.ctx.trace(kind, **data)

    def run(self) -> None:
        self._trace("rounds_exhausted")  # uncataloged kind: finding
