"""RL010 negative fixture: derived timestamps and exempt aggregation.

Multiplication gives every path the identical timestamp; aggregation
counters (``total_*`` etc.) measure rather than schedule and are
exempt; integer step accumulation is exact and exempt."""


def schedule_ticks(sim, on_tick, start, step, count):
    for i in range(count):
        sim.call_at(start + (i + 1) * step, on_tick)


def total_latency(samples):
    total_time = 0.0
    for sample in samples:
        total_time += sample  # aggregate counter: measures, never schedules
    return total_time


def count_slots(slots):
    slot_at = 0
    for _ in slots:
        slot_at += 1  # integer accumulation is exact
    return slot_at
