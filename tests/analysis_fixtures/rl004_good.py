"""RL004 negative fixture: cataloged kinds, or non-literal dispatch."""


def report(tracer, sim, node: int) -> None:
    tracer.emit("fetch_start", t=sim.now, node=node)
    tracer.emit("fetch_done", t=sim.now, node=node, success=True)


def relay(tracer, kind: str, **data) -> None:
    # non-literal kinds are the wrapper pattern (ctx.trace); the rule
    # checks the literal call sites that feed them instead
    tracer.emit(kind, **data)
