"""RL001 negative fixture: retry-backoff jitter from a seeded stream.

This mirrors ``AdaptiveFetcher._next_backoff``: the jitter draw comes
from the fetcher's own ``random.Random`` handed out by
``RngRegistry.stream(...)``, so a replay with the same seed produces
the same wave times bit-for-bit.
"""

import random


class Retrier:
    def __init__(self, rng: random.Random, base: float, multiplier: float) -> None:
        self.rng = rng  # an RngRegistry.stream(...) instance
        self.base = base
        self.multiplier = multiplier
        self.waves = 0

    def next_backoff(self) -> float:
        self.waves += 1
        delay = self.base * self.multiplier**self.waves
        return delay * (1.0 + 0.5 * self.rng.random())
