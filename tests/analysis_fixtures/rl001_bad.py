"""RL001 positive fixture: module-level RNG state in protocol code."""

import random

import numpy as np
from numpy import random as nprandom
from random import choice as pick


def jitter() -> float:
    return random.random() * 0.05  # global stream: finding


def reseed() -> None:
    random.seed(1234)  # global reseed: finding
    np.random.seed(7)  # numpy global state: finding


def pick_peer(peers):
    shuffled = list(peers)
    random.shuffle(shuffled)  # global stream: finding
    nprandom.shuffle(shuffled)  # aliased numpy.random: finding
    return pick(shuffled)  # from-import alias of random.choice: finding
