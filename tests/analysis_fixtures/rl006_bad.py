"""RL006 positive fixture: silently swallowed broad exceptions."""


def deliver(handler, message) -> None:
    try:
        handler(message)
    except Exception:  # swallowed: finding
        pass


def poll(sources) -> None:
    for source in sources:
        try:
            source.read()
        except (ValueError, Exception):  # broad member swallowed: finding
            ...
