"""RL005 negative fixture: order comparisons and exact sentinels."""


def expired(sim, stats) -> bool:
    return stats.deadline <= sim.now  # order comparison: fine


def no_slot(slot_start_at: int) -> bool:
    return slot_start_at == -1  # int sentinel, exact by construction: fine


def same_kind(kind: str) -> bool:
    return kind == "fetch_start"  # not a time value: fine
