"""Pragma fixture: documented, above-line, and undocumented suppressions."""

import random


def documented_same_line() -> float:
    return random.random()  # reprolint: disable=RL001 -- fixture: justified same-line suppression


def documented_line_above() -> float:
    # reprolint: disable=RL001 -- fixture: pragma on the line above a long statement
    return random.random()


def undocumented() -> float:
    return random.random()  # reprolint: disable=RL001
