"""RL002 negative fixture: a sampler driven entirely by the sim clock.

The sampler records ``sim.now``, reschedules itself through the
simulator, and delegates wall-clock concerns to an injected heartbeat
callable (whose implementation lives in the allowlisted
``repro/obs/progress.py``) — so this module never touches real time.
"""


def sample_tick(sim, samples: list, cadence: float, heartbeat=None) -> None:
    samples.append({"t": sim.now})
    if heartbeat is not None:
        heartbeat(sim.now)
    sim.call_after(cadence, lambda: sample_tick(sim, samples, cadence, heartbeat))
