"""RL008 positive fixture: drawing streams this module does not own.

``samples`` is registered to the node/baseline modules; this fixture
path is not among its owners. ``no-such-label`` is not registered at
all — both are findings."""


def setup(rngs):
    sample_rng = rngs.stream("samples", 3)
    ghost_rng = rngs.stream("no-such-label")
    return sample_rng, ghost_rng
