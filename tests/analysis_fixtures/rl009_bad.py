"""RL009 positive fixture: process-global mutable state.

Two module-level containers written from functions (run A's leftovers
leak into run B), plus the same trap in miniature — a mutable default
argument shared by every call."""

_CACHE: dict = {}
_EVENTS = []


def remember(key, value):
    _CACHE[key] = value


def record(event):
    _EVENTS.append(event)


def collect(into=[]):
    into.append(1)
    return into
