"""RL008 negative fixture: the dependency-injection idiom.

Components receive an already-derived stream from their owner instead
of drawing by label; registry plumbing that forwards a *non-literal*
label is not a draw site and is skipped."""


class Sampler:
    def __init__(self, rng):
        self.rng = rng  # handed an owned stream; no label drawn here

    def pick(self, ordered_peers):
        return self.rng.choice(ordered_peers)


def wire(rngs, label):
    # pass-through plumbing: the label is the caller's responsibility
    return rngs.stream(label)
