"""RL002 negative fixture: time comes from the simulated clock."""


def handle_event(sim, state) -> None:
    state.completed_at = sim.now


def schedule_next(sim, callback) -> None:
    sim.call_after(0.4, callback)
