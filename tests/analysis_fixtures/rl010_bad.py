"""RL010 positive fixture: sim-time accumulated by float ``+=``.

``t += step`` executed N times is not ``t0 + N*step`` in float
arithmetic — the rounding depends on the path, so two routes to "the
same" instant disagree in the last ulp and a heap scheduler orders
their events differently. Both the AugAssign and the ``x = x + dt``
spelling are findings."""


def schedule_ticks(sim, on_tick, start, step, count):
    t = start
    for _ in range(count):
        t += step
        sim.call_at(t, on_tick)


def drain(sim, on_tick, deadline, dt):
    next_at = 0.0
    while next_at < deadline:
        next_at = next_at + dt
        sim.call_at(next_at, on_tick)
