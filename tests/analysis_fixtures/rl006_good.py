"""RL006 negative fixture: narrow or genuinely handled exceptions."""


def deliver(handler, message, metrics) -> None:
    try:
        handler(message)
    except ValueError:
        # narrow type, deliberate drop: allowed (the rule targets
        # broad swallows that hide unknown failures)
        pass
    except Exception:
        metrics.record_failure(message)
        raise
