"""RL002 positive fixture: wall-clock reads in simulation logic."""

import time
from datetime import datetime
from time import perf_counter as tick


def handle_event(state) -> None:
    state.completed_at = time.time()  # wall clock: finding


def measure(callback) -> float:
    start = tick()  # aliased perf_counter: finding
    callback()
    return tick() - start  # finding


def stamp() -> str:
    return datetime.now().isoformat()  # finding
