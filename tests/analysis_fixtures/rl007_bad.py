"""RL007 positive fixture: nondeterministic sources crossing function
boundaries into protocol sinks. Four flows, each spanning at least two
functions — the per-file RL003 cannot see any of them."""

import os


# flow 1: set order materialized here ...
def order_peers(peers: set) -> list:
    return list(peers)


# ... sent over the wire two hops later
def emit_all(transport, batch):
    for item in batch:
        transport.send(item, b"payload")


def run(transport, peers: set) -> None:
    batch = order_peers(peers)
    emit_all(transport, batch)


# flow 2: id() is per-process memory layout
def identity_nonce(obj) -> int:
    return id(obj)


def publish_nonce(bus, obj) -> None:
    bus.publish(identity_nonce(obj))


# flow 3: the environment differs across hosts
def env_flag() -> str:
    return os.environ.get("REPRO_MODE", "full")


def announce(transport) -> None:
    transport.broadcast(env_flag())


# flow 4: builtin hash() is salted per process; feeding it to an RNG
# draw re-aligns the stream differently on every run
def hash_bucket(item) -> int:
    return hash(item)


def pick(rng, item) -> int:
    return rng.randrange(hash_bucket(item))
