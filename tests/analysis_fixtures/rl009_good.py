"""RL009 negative fixture: state on per-run objects.

Immutable module constants are fine; a module-level mapping that is
only ever *read* is fine; mutable containers live on instances created
per run, and defaults use the None idiom."""

PHASES = ("seed", "sample", "repair")
LIMITS = {"max_inbox": 4096}  # read-only lookup table: never written


class Recorder:
    def __init__(self):
        self.events = []

    def record(self, event):
        self.events.append(event)

    def max_inbox(self):
        return LIMITS["max_inbox"]


def collect(into=None):
    if into is None:
        into = []
    into.append(1)
    return into
