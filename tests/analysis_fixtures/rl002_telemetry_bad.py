"""RL002 positive fixture: wall clock smuggled into a telemetry sampler.

A metrics sampler runs inside the event loop, so any wall-clock read
here leaks host timing into the recorded series — the exact drift the
telemetry determinism contract forbids. Real-time reads belong only in
the allowlisted heartbeat path (``repro/obs/progress.py``).
"""

import time
from datetime import datetime


def sample_tick(sim, samples: list) -> None:
    samples.append({"t": time.time()})  # wall clock in the sampler: finding


def heartbeat_inline(last_beat: float) -> bool:
    return time.monotonic() - last_beat > 10.0  # finding


def stamp_series_meta() -> str:
    return datetime.now().isoformat()  # finding
