"""RL003 positive fixture: hash-ordered iteration feeding draws/sends."""

from typing import Dict, Set


class Node:
    def __init__(self) -> None:
        self.peers: Set[int] = set()
        self.mesh: Dict[int, Set[int]] = {}

    def flood(self, transport, message) -> None:
        for peer in self.peers:  # set order decides send order: finding
            transport.send(peer, message)

    def forward(self, topic: int, transport, message) -> None:
        for peer in self.mesh.get(topic, set()):  # set via dict-of-set: finding
            transport.send(peer, message)

    def draw(self, rng):
        return rng.choice(list(self.peers))  # rng over set order: finding

    def drain(self, rng) -> None:
        for peer, links in self.mesh.items():  # dict view feeding a draw: finding
            if rng.random() < 0.5:
                links.clear()
