"""RL007 negative fixture: the same call shapes as the positive
fixture, with every order made explicit before it crosses a function
boundary — sorted() launders set order, and stable keys replace
id()/hash()."""


def order_peers(peers: set) -> list:
    return sorted(peers)  # explicit order: part of the program text


def emit_all(transport, batch):
    for item in batch:
        transport.send(item, b"payload")


def run(transport, peers: set) -> None:
    emit_all(transport, order_peers(peers))


def stable_nonce(counter: int) -> int:
    return counter + 1  # a derived sequence number, not memory layout


def publish_nonce(bus, counter: int) -> None:
    bus.publish(stable_nonce(counter))


def pick(rng, num_buckets: int) -> int:
    return rng.randrange(num_buckets)
