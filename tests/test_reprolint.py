"""reprolint: rule fixtures, pragma semantics, engine behaviour, and
the meta-test pinning that ``src/`` itself lints clean.

Every rule has a positive fixture (must fire, with the expected count)
and a negative fixture (must stay silent) under
``tests/analysis_fixtures/``; the fixtures double as documentation of
what each rule does and does not claim.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.reprolint import (
    Finding,
    LintConfig,
    Linter,
    active,
    all_rule_classes,
    load_stream_owners,
    load_trace_catalog,
    parse_pragmas,
    registered_program_rules,
    registered_rules,
    rule_code_span,
)
from repro.analysis.reprolint.cli import run as reprolint_run

TESTS_DIR = Path(__file__).parent
FIXTURES = TESTS_DIR / "analysis_fixtures"
REPO_ROOT = TESTS_DIR.parent
SRC = REPO_ROOT / "src"

ALL_RULES = (
    "RL001",
    "RL002",
    "RL003",
    "RL004",
    "RL005",
    "RL006",
    "RL007",
    "RL008",
    "RL009",
    "RL010",
)
PROGRAM_RULES = ("RL007",)


def lint_fixture(name: str, **config_kwargs) -> list[Finding]:
    config = LintConfig(**config_kwargs)
    path = FIXTURES / name
    return Linter(config).lint_paths([path], root=FIXTURES)


def codes(findings: list[Finding]) -> list[str]:
    return [f.rule for f in active(findings)]


# ----------------------------------------------------------------------
# rule fixtures: positive (exact count) and negative (silent)
# ----------------------------------------------------------------------
POSITIVE_EXPECTATIONS = {
    "rl001_bad.py": ("RL001", 6),
    "rl002_bad.py": ("RL002", 4),
    "rl002_telemetry_bad.py": ("RL002", 3),
    "rl003_bad.py": ("RL003", 4),
    "rl004_bad.py": ("RL004", 2),
    "rl005_bad.py": ("RL005", 3),
    "rl006_bad.py": ("RL006", 2),
    "rl007_bad.py": ("RL007", 4),
    "rl008_bad.py": ("RL008", 2),
    "rl009_bad.py": ("RL009", 3),
    "rl010_bad.py": ("RL010", 2),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("fixture", sorted(POSITIVE_EXPECTATIONS))
    def test_positive_fixture_fires(self, fixture):
        rule, count = POSITIVE_EXPECTATIONS[fixture]
        found = codes(lint_fixture(fixture))
        assert found == [rule] * count, found

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_negative_fixture_silent(self, rule):
        fixture = f"{rule.lower()}_good.py"
        assert codes(lint_fixture(fixture)) == []

    def test_every_rule_has_both_fixtures(self):
        for code in all_rule_classes():
            if code == "RL000":
                continue
            assert (FIXTURES / f"{code.lower()}_bad.py").exists(), code
            assert (FIXTURES / f"{code.lower()}_good.py").exists(), code

    def test_findings_carry_location(self):
        findings = active(lint_fixture("rl001_bad.py"))
        for finding in findings:
            assert finding.path == "rl001_bad.py"
            assert finding.line > 0 and finding.col > 0
            assert "RngRegistry" in finding.message


class TestRuleDetails:
    def test_rl001_allows_random_class_reference(self):
        findings = Linter().lint_source(
            "import random\nrng = random.Random(7)\n", "snippet.py"
        )
        assert codes(findings) == []

    def test_rl001_catches_aliased_numpy(self):
        source = "import numpy.random as npr\nnpr.standard_normal(4)\n"
        assert codes(Linter().lint_source(source, "s.py")) == ["RL001"]

    def test_rl001_catches_retry_jitter_regression(self):
        """Backoff jitter in the retry path must come from the seeded
        sim RNG (``RngRegistry.stream``), never the ``random`` module —
        a global draw would desync every `repro pipeline` replay."""
        assert codes(lint_fixture("rl001_retry_bad.py")) == ["RL001"] * 2
        assert codes(lint_fixture("rl001_retry_good.py")) == []

    def test_fetching_retry_path_draws_from_stream_rng(self):
        """The real retry implementation lints clean and carries no
        reprolint suppression around its jitter draw."""
        path = SRC / "repro" / "core" / "fetching.py"
        findings = Linter().lint_paths([path], root=SRC)
        assert [f.rule for f in active(findings)] == []
        assert "reprolint: disable=RL001" not in path.read_text()

    def test_rl002_allowlist_covers_profiler(self):
        source = "import time\nstart = time.perf_counter()\n"
        # same source: flagged at an arbitrary path, allowed in the profiler
        assert codes(Linter().lint_source(source, "repro/obs/other.py")) == ["RL002"]
        assert codes(Linter().lint_source(source, "repro/obs/profiler.py")) == []

    def test_rl002_telemetry_sampler_stays_sim_clocked(self):
        """Telemetry must not read the wall clock: the sampler fixture
        pair pins that real time is flagged inside sampling logic and
        that only the injected-heartbeat shape lints clean. The
        allowlist admits the heartbeat module, never the registry."""
        assert codes(lint_fixture("rl002_telemetry_good.py")) == []
        source = "import time\nlast = time.monotonic()\n"
        assert codes(Linter().lint_source(source, "repro/obs/progress.py")) == []
        assert (
            codes(Linter().lint_source(source, "repro/obs/telemetry.py"))
            == ["RL002"]
        )

    def test_rl003_requires_a_sink(self):
        source = (
            "def census(peers: set):\n"
            "    total = 0\n"
            "    for p in peers:\n"
            "        total += p\n"
            "    return total\n"
        )
        assert codes(Linter().lint_source(source, "s.py")) == []

    def test_rl003_infers_through_set_operators(self):
        source = (
            "def go(a: set, b: set, transport):\n"
            "    for p in a & b:\n"
            "        transport.send(p, None)\n"
        )
        assert codes(Linter().lint_source(source, "s.py")) == ["RL003"]

    def test_rl004_catalog_matches_ast_and_import(self):
        static = load_trace_catalog(SRC / "repro" / "obs" / "events.py")
        live = load_trace_catalog()
        assert static == live
        assert "fetch_start" in live

    def test_rl005_accepts_order_comparisons(self):
        source = "def f(now, deadline):\n    return deadline <= now\n"
        assert codes(Linter().lint_source(source, "s.py")) == []

    def test_rl006_allows_narrow_swallow(self):
        source = "try:\n    f()\nexcept KeyError:\n    pass\n"
        assert codes(Linter().lint_source(source, "s.py")) == []

    def test_syntax_error_is_reported_not_raised(self):
        findings = Linter().lint_source("def broken(:\n", "s.py")
        assert codes(findings) == ["RL000"]
        assert "does not parse" in findings[0].message


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_parse_forms(self):
        source = (
            "x = 1  # reprolint: disable=RL001 -- because\n"
            "# reprolint: disable=RL001,RL003 -- two codes\n"
            "# reprolint: disable-file=RL005 -- whole module\n"
            "y = 2  # reprolint: disable=RL002\n"
        )
        pragmas = parse_pragmas(source)
        assert [p.line for p in pragmas] == [1, 2, 3, 4]
        assert pragmas[1].codes == ("RL001", "RL003")
        assert pragmas[2].file_wide
        assert not pragmas[3].documented

    def test_documented_pragmas_suppress(self):
        findings = lint_fixture("pragmas.py")
        suppressed = [f for f in findings if f.suppressed]
        assert len(suppressed) == 3
        # the only *active* finding is RL000 for the undocumented pragma
        assert codes(findings) == ["RL000"]
        documented = [f for f in suppressed if f.justification]
        assert len(documented) == 2

    def test_allow_undocumented_config(self):
        findings = lint_fixture("pragmas.py", require_justification=False)
        assert codes(findings) == []

    def test_file_wide_pragma(self):
        source = (
            "# reprolint: disable-file=RL001 -- fixture-style module\n"
            "import random\n"
            "a = random.random()\n"
            "b = random.random()\n"
        )
        findings = Linter().lint_source(source, "s.py")
        assert codes(findings) == []
        assert sum(f.suppressed for f in findings) == 2

    def test_unknown_code_in_pragma_flagged(self):
        source = "x = 1  # reprolint: disable=RL999 -- no such rule\n"
        findings = Linter().lint_source(source, "s.py")
        assert codes(findings) == ["RL000"]
        assert "unknown rule" in findings[0].message

    def test_pragma_does_not_leak_to_later_lines(self):
        source = (
            "import random\n"
            "a = random.random()  # reprolint: disable=RL001 -- this one only\n"
            "b = random.random()\n"
        )
        assert codes(Linter().lint_source(source, "s.py")) == ["RL001"]


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_select_and_ignore(self):
        findings = lint_fixture("rl001_bad.py", select=("RL002",))
        assert codes(findings) == []
        findings = lint_fixture("rl002_bad.py", ignore=("RL002",))
        assert codes(findings) == []

    def test_custom_allowlist(self):
        findings = lint_fixture(
            "rl001_bad.py",
            allowlists={"RL001": ("rl001_bad.py",)},
        )
        assert codes(findings) == []

    def test_findings_sorted_by_location(self):
        findings = active(lint_fixture("rl001_bad.py"))
        keys = [f.sort_key() for f in findings]
        assert keys == sorted(keys)

    def test_registry_is_complete(self):
        assert set(all_rule_classes()) == set(ALL_RULES)
        assert set(registered_program_rules()) == set(PROGRAM_RULES)
        assert set(registered_rules()) == set(ALL_RULES) - set(PROGRAM_RULES)

    def test_rule_code_span_derives_from_registry(self):
        assert rule_code_span() == f"{ALL_RULES[0]}-{ALL_RULES[-1]}"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, capsys):
        assert reprolint_run([str(FIXTURES / "rl001_good.py")]) == 0
        assert reprolint_run([str(FIXTURES / "rl001_bad.py")]) == 1
        assert reprolint_run([str(FIXTURES / "no_such_file.py")]) == 2
        capsys.readouterr()

    def test_json_output(self, capsys):
        code = reprolint_run(["--json", str(FIXTURES / "rl005_bad.py")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert len(payload["findings"]) == 3
        assert {f["rule"] for f in payload["findings"]} == {"RL005"}

    def test_list_rules(self, capsys):
        assert reprolint_run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "RL003" in proc.stdout

    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", str(FIXTURES / "rl002_good.py")]) == 0
        assert main(["lint", str(FIXTURES / "rl002_bad.py")]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# interprocedural rules (RL007-RL010) and the whole-program engine
# ----------------------------------------------------------------------
class TestInterprocedural:
    def test_cross_module_flow_found_and_anchored_at_source(self):
        findings = active(Linter().lint_paths([FIXTURES / "xmod"], root=FIXTURES))
        assert [f.rule for f in findings] == ["RL007"]
        finding = findings[0]
        assert finding.path == "xmod/source_mod.py"
        assert "custody_order -> run_bad -> relay" in finding.message
        assert "xmod/sink_mod.py" in finding.message

    def test_rl007_message_names_source_and_sink(self):
        findings = active(lint_fixture("rl007_bad.py"))
        kinds = {f.message.split(" from ")[0] for f in findings}
        assert kinds == {
            "nondeterministic set order",
            "nondeterministic id()",
            "nondeterministic os.environ",
            "nondeterministic hash()",
        }

    def test_rl007_not_reported_for_intraprocedural_flow(self):
        # same-function source→sink is RL003's territory; RL007 must
        # not double-report it
        source = (
            "def gossip(transport, peers: set):\n"
            "    for p in peers:\n"
            "        transport.send(p, b'')\n"
        )
        assert codes(Linter().lint_source(source, "s.py")) == ["RL003"]

    def test_rl007_sorted_launders_across_boundary(self):
        source = (
            "def order(peers: set):\n"
            "    return sorted(peers)\n"
            "def run(transport, peers: set):\n"
            "    for p in order(peers):\n"
            "        transport.send(p, b'')\n"
        )
        assert codes(Linter().lint_source(source, "s.py")) == []

    def test_rl008_loader_matches_ast_and_import(self):
        static = load_stream_owners(SRC / "repro" / "sim" / "rng.py")
        live = load_stream_owners()
        assert static == live
        assert "samples" in live

    def test_rl008_owner_module_is_allowed(self):
        source = 'def go(rngs):\n    return rngs.stream("seeding", 1)\n'
        assert codes(Linter().lint_source(source, "repro/core/builder.py")) == []
        assert codes(Linter().lint_source(source, "repro/core/node.py")) == ["RL008"]

    def test_rl008_extra_owners_config(self):
        source = 'def go(rngs):\n    return rngs.stream("custom", 1)\n'
        assert codes(
            Linter(
                LintConfig(extra_stream_owners={"custom": ("s.py",)})
            ).lint_source(source, "s.py")
        ) == []

    def test_rl009_engine_registry_is_allowlisted(self):
        # the linter's own rule registry is module-level but written
        # only at import time; the default allowlist admits it
        path = SRC / "repro" / "analysis" / "reprolint" / "engine.py"
        findings = Linter().lint_paths([path], root=SRC)
        assert [f.rule for f in active(findings)] == []

    def test_rl010_derived_time_is_silent_in_nested_function(self):
        # a def boundary ends the loop ancestry walk: the inner function
        # body does not repeat with the outer loop
        source = (
            "def outer(items, dt):\n"
            "    for item in items:\n"
            "        def later(t):\n"
            "            t += dt\n"
            "            return t\n"
        )
        assert codes(Linter().lint_source(source, "s.py")) == []


class TestCache:
    def _tree(self, tmp_path: Path) -> Path:
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "a.py").write_text(
            "def order(peers: set):\n    return list(peers)\n",
            encoding="utf-8",
        )
        (tree / "b.py").write_text(
            "from a import order\n"
            "def run(transport, peers: set):\n"
            "    for p in order(peers):\n"
            "        transport.send(p, b'')\n",
            encoding="utf-8",
        )
        return tree

    def test_cold_then_warm_and_results_identical(self, tmp_path):
        from repro.analysis.reprolint.cache import LintCache

        tree = self._tree(tmp_path)
        config = LintConfig()
        cache_path = tmp_path / "cache.json"

        cache = LintCache(cache_path, config)
        first = Linter(config).lint_paths([tree], root=tree, cache=cache)
        cache.save()
        assert cache.file_misses == 2 and cache.file_hits == 0
        assert not cache.program_hit

        warm = LintCache(cache_path, config)
        second = Linter(config).lint_paths([tree], root=tree, cache=warm)
        assert warm.file_hits == 2 and warm.file_misses == 0
        assert warm.program_hit
        assert [f.format() for f in first] == [f.format() for f in second]
        assert [f.rule for f in active(second)] == ["RL007"]

    def test_content_change_invalidates_file_and_program(self, tmp_path):
        from repro.analysis.reprolint.cache import LintCache

        tree = self._tree(tmp_path)
        config = LintConfig()
        cache_path = tmp_path / "cache.json"
        cache = LintCache(cache_path, config)
        Linter(config).lint_paths([tree], root=tree, cache=cache)
        cache.save()

        # sorting at the source removes the cross-module flow; the
        # cache must not resurrect it
        (tree / "a.py").write_text(
            "def order(peers: set):\n    return sorted(peers)\n",
            encoding="utf-8",
        )
        warm = LintCache(cache_path, config)
        findings = Linter(config).lint_paths([tree], root=tree, cache=warm)
        assert warm.file_hits == 1 and warm.file_misses == 1
        assert not warm.program_hit
        assert [f.rule for f in active(findings)] == []

    def test_changed_config_invalidates_everything(self, tmp_path):
        from repro.analysis.reprolint.cache import LintCache

        tree = self._tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache = LintCache(cache_path, LintConfig())
        Linter(LintConfig()).lint_paths([tree], root=tree, cache=cache)
        cache.save()

        narrowed = LintConfig(select=("RL003",))
        cold = LintCache(cache_path, narrowed)
        Linter(narrowed).lint_paths([tree], root=tree, cache=cold)
        assert cold.file_misses == 2 and cold.file_hits == 0

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        from repro.analysis.reprolint.cache import LintCache

        tree = self._tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        cache = LintCache(cache_path, LintConfig())
        findings = Linter(LintConfig()).lint_paths([tree], root=tree, cache=cache)
        assert [f.rule for f in active(findings)] == ["RL007"]

    def test_pragmas_reapplied_on_warm_hits(self, tmp_path):
        from repro.analysis.reprolint.cache import LintCache

        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "m.py").write_text(
            "import random\n"
            "x = random.random()  # reprolint: disable=RL001 -- fixture\n",
            encoding="utf-8",
        )
        cache_path = tmp_path / "cache.json"
        config = LintConfig()
        cache = LintCache(cache_path, config)
        Linter(config).lint_paths([tree], root=tree, cache=cache)
        cache.save()
        warm = LintCache(cache_path, config)
        findings = Linter(config).lint_paths([tree], root=tree, cache=warm)
        assert warm.file_hits == 1
        assert [f.rule for f in active(findings)] == []
        assert sum(f.suppressed for f in findings) == 1

    def test_cli_cache_flag(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.json"
        target = str(FIXTURES / "rl001_good.py")
        assert reprolint_run([target, "--cache", str(cache_path)]) == 0
        assert cache_path.exists()
        assert reprolint_run([target, "--cache", str(cache_path)]) == 0
        err = capsys.readouterr().err
        assert "1 hit(s), 0 miss(es)" in err


# ----------------------------------------------------------------------
# the meta-test: this repository obeys its own contract
# ----------------------------------------------------------------------
class TestTreeIsClean:
    def test_src_lints_clean(self):
        findings = Linter().lint_paths([SRC], root=REPO_ROOT)
        gating = active(findings)
        assert gating == [], "\n".join(f.format() for f in gating)

    def test_every_suppression_is_documented(self):
        findings = Linter().lint_paths([SRC], root=REPO_ROOT)
        undocumented = [
            f for f in findings if f.suppressed and not f.justification
        ]
        assert undocumented == [], "\n".join(f.format() for f in undocumented)
