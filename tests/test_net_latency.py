"""Unit tests for the WAN latency models."""

from __future__ import annotations

import statistics

import pytest

from repro.net.latency import ClusteredWanModel, ConstantLatency, UniformLatency


def test_constant_latency():
    model = ConstantLatency(0.05, num_vertices=10)
    assert model.one_way(0, 1) == 0.05
    assert model.one_way(3, 3) == 0.0
    assert model.mean_one_way(2) == 0.05


def test_uniform_latency_bounds_and_symmetry():
    model = UniformLatency(0.01, 0.1, num_vertices=50, seed=1)
    for a, b in [(0, 1), (4, 40), (12, 33)]:
        latency = model.one_way(a, b)
        assert 0.01 <= latency <= 0.1
        assert model.one_way(b, a) == latency


def test_uniform_latency_self_is_zero():
    model = UniformLatency(num_vertices=10)
    assert model.one_way(5, 5) == 0.0


def test_uniform_latency_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        UniformLatency(0.2, 0.1)


class TestClusteredWanModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ClusteredWanModel(num_vertices=3000, seed=11)

    def test_symmetry(self, model):
        assert model.one_way(1, 2) == model.one_way(2, 1)

    def test_self_latency_zero(self, model):
        assert model.one_way(7, 7) == 0.0

    def test_deterministic_given_seed(self):
        a = ClusteredWanModel(num_vertices=200, seed=5)
        b = ClusteredWanModel(num_vertices=200, seed=5)
        assert a.one_way(3, 77) == b.one_way(3, 77)

    def test_rtt_statistics_match_paper_trace(self, model):
        """Paper's IPFS trace: RTT min ~8 ms, mean ~64 ms, max ~438 ms."""
        rtts = model.rtt_sample(pairs=15_000, seed=2)
        assert 0.004 <= min(rtts) <= 0.020
        assert 0.045 <= statistics.mean(rtts) <= 0.085
        assert 0.200 <= max(rtts) <= 0.700

    def test_triangle_latency_floor(self, model):
        """All pairs pay at least the intra-cluster floor + accesses."""
        for a, b in [(0, 1), (10, 2000), (55, 999)]:
            assert model.one_way(a, b) >= model.intra_cluster_floor

    def test_best_connected_returns_fraction(self, model):
        best = model.best_connected(0.2)
        assert len(best) == int(3000 * 0.2)

    def test_best_connected_are_actually_better(self, model):
        best = model.best_connected(0.1)
        best_mean = statistics.mean(model.mean_one_way(v) for v in best[:50])
        overall_mean = statistics.mean(model.mean_one_way(v) for v in range(0, 3000, 60))
        assert best_mean < overall_mean

    def test_best_connected_rejects_bad_fraction(self, model):
        with pytest.raises(ValueError):
            model.best_connected(0.0)

    def test_mean_one_way_close_to_sampled_mean(self, model):
        vertex = 42
        import random

        rng = random.Random(3)
        sampled = statistics.mean(
            model.one_way(vertex, rng.randrange(3000)) for _ in range(2000)
        )
        assert model.mean_one_way(vertex) == pytest.approx(sampled, rel=0.15)
