"""Node-side validation layer: the defenses of the Byzantine threat model.

Each test crafts hostile datagrams against a MiniWorld node and asserts
the acceptance chain of ``PandasNode.on_datagram``/``_on_response``:
forged seeds and unsolicited responses are rejected outright, cells
never requested are filtered, cells failing KZG verification are
dropped (never stored), floods hit the per-peer token bucket, and
buffered request remainders expire at the sampling deadline.
"""

from __future__ import annotations

from repro.core.messages import (
    PRIORITY_RETRIEVAL,
    CellRequest,
    CellResponse,
    SeedMessage,
)
from repro.params import PandasParams
from tests.helpers import make_world


def small_params(**overrides) -> PandasParams:
    return PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10, **overrides
    )


class TestSeedValidation:
    def test_forged_seed_rejected(self):
        world = make_world()
        node = world.nodes[0]
        forged = SeedMessage(slot=0, epoch=0, line=0, cells=(1, 2, 3))
        world.network.send(5, 0, forged, forged.wire_size(world.params))
        world.sim.run(until=0.1)
        assert node.slot_cells(0) is None
        assert world.ctx.metrics.defense_counts["seed_forged"] == 1
        assert node.reputation.stats[5].unsolicited == 1

    def test_builder_seed_accepted(self):
        world = make_world()
        node = world.nodes[0]
        seed = SeedMessage(slot=0, epoch=0, line=0, cells=(1, 2, 3))
        world.network.send(world.ctx.builder_id, 0, seed, seed.wire_size(world.params))
        world.sim.run(until=0.1)
        assert node.slot_cells(0) is not None
        assert node.slot_cells(0).has_cell(1)


class TestResponseValidation:
    def test_unsolicited_response_never_creates_state(self):
        world = make_world()
        node = world.nodes[0]
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.1)
        assert node.slot_cells(0) is None
        assert world.ctx.metrics.defense_counts["resp_unsolicited"] == 1
        assert node.reputation.stats[5].unsolicited == 1

    def test_response_from_never_queried_peer_rejected(self):
        world = make_world()
        node = world.nodes[0]
        state = node._slot_state(0)  # slot exists, but peer 5 was never queried
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.1)
        assert not state.cells.has_cell(1)
        assert world.ctx.metrics.defense_counts["resp_unsolicited"] == 1

    def test_unrequested_cells_filtered(self):
        world = make_world()
        node = world.nodes[0]
        state = node._slot_state(0)
        state.outstanding[5] = {1, 2}
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2, 3))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.1)
        assert state.cells.has_cell(1) and state.cells.has_cell(2)
        assert not state.cells.has_cell(3)
        assert world.ctx.metrics.defense_counts["cells_unrequested"] == 1
        assert node.reputation.stats[5].unrequested == 1

    def test_corrupt_cells_dropped_never_stored(self):
        world = make_world()
        node = world.nodes[0]
        state = node._slot_state(0)
        state.outstanding[5] = {1, 2}
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2), invalid=frozenset({1}))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.1)
        assert state.cells.has_cell(2)
        assert not state.cells.has_cell(1)
        assert world.ctx.metrics.defense_counts["cells_invalid"] == 1
        assert node.reputation.stats[5].invalid == 1
        assert node.reputation.stats[5].valid == 1  # cell 2 still credited

    def test_all_corrupt_response_stores_nothing(self):
        world = make_world()
        node = world.nodes[0]
        state = node._slot_state(0)
        state.outstanding[5] = {1, 2}
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2), invalid=frozenset({1, 2}))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.1)
        assert not state.cells.has_cell(1) and not state.cells.has_cell(2)
        assert node.reputation.stats[5].invalid == 2

    def test_late_reply_after_drop_slot_is_stale_not_hostile(self):
        world = make_world()
        node = world.nodes[0]
        state = node._slot_state(0)
        state.outstanding[5] = {1}
        node.drop_slot(0)
        resp = CellResponse(slot=0, epoch=0, cells=(1,))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.1)
        assert world.ctx.metrics.defense_counts["resp_stale"] == 1
        assert 5 not in node.reputation.stats


class TestVerifyCost:
    def test_verification_delay_charged_per_cell(self):
        world = make_world(params=small_params(cell_verify_seconds=0.01))
        node = world.nodes[0]
        state = node._slot_state(0)
        state.outstanding[5] = {1, 2}
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        # delivery at 0.01 (latency) + 2 cells x 10 ms verify = 0.03
        world.sim.run(until=0.025)
        assert not state.cells.has_cell(1)
        world.sim.run(until=0.035)
        assert state.cells.has_cell(1)

    def test_crash_discards_in_flight_verification(self):
        world = make_world(params=small_params(cell_verify_seconds=0.01))
        node = world.nodes[0]
        state = node._slot_state(0)
        state.outstanding[5] = {1, 2}
        resp = CellResponse(slot=0, epoch=0, cells=(1, 2))
        world.network.send(5, 0, resp, resp.wire_size(world.params))
        world.sim.run(until=0.015)  # delivered, still verifying
        node.crash()
        world.sim.run(until=0.1)  # the guarded callback fires harmlessly
        assert node.slot_cells(0) is None


class TestRateLimiting:
    def test_flood_hits_token_bucket(self):
        world = make_world(
            params=small_params(inbound_msg_rate=1.0, inbound_msg_burst=2.0)
        )
        req = CellRequest(slot=0, epoch=0, cells=frozenset({1}))
        for _ in range(5):
            world.network.send(1, 0, req, req.wire_size(world.params))
        world.sim.run(until=0.1)
        assert world.ctx.metrics.defense_counts["rate_limited"] == 3

    def test_buckets_are_per_peer(self):
        world = make_world(
            params=small_params(inbound_msg_rate=1.0, inbound_msg_burst=2.0)
        )
        req = CellRequest(slot=0, epoch=0, cells=frozenset({1}))
        for src in (1, 2):
            for _ in range(2):
                world.network.send(src, 0, req, req.wire_size(world.params))
        world.sim.run(until=0.1)
        assert "rate_limited" not in world.ctx.metrics.defense_counts

    def test_crash_resets_buckets_and_reputation(self):
        world = make_world(
            params=small_params(inbound_msg_rate=1.0, inbound_msg_burst=2.0)
        )
        node = world.nodes[0]
        req = CellRequest(slot=0, epoch=0, cells=frozenset({1}))
        for _ in range(3):
            world.network.send(1, 0, req, req.wire_size(world.params))
        world.sim.run(until=0.1)
        node.reputation.record_invalid(9, 5)
        node.crash()
        assert not node._buckets
        assert node.reputation.weight(9) == 1.0


class TestPendingExpiry:
    """A one-node world: no peers to cascade fetch traffic into, so the
    global defense counters reflect exactly the crafted requests."""

    def test_buffered_remainder_expires_at_deadline(self):
        world = make_world(num_nodes=1)
        node = world.nodes[0]
        node._on_request(9, CellRequest(slot=0, epoch=0, cells=frozenset({1, 2})))
        state = node._slots[0]
        assert state.waiting_by_cell  # buffered, cells not held
        assert state.expiry_timer is not None
        world.sim.run(until=world.params.deadline + 0.1)
        assert not state.waiting_by_cell
        assert state.expiry_timer is None
        assert world.ctx.metrics.defense_counts["pending_expired"] == 1

    def test_request_after_deadline_not_buffered(self):
        world = make_world(num_nodes=1)
        node = world.nodes[0]
        world.sim.run(until=world.params.deadline + 0.5)
        node._on_request(9, CellRequest(slot=0, epoch=0, cells=frozenset({1, 2})))
        state = node._slots[0]
        assert not state.waiting_by_cell
        assert state.expiry_timer is None
        # immediate drops count the unanswerable cells (two here)
        assert world.ctx.metrics.defense_counts["pending_expired"] == 2

    def test_expiry_counts_records_not_cells(self):
        world = make_world(num_nodes=1)
        node = world.nodes[0]
        node._on_request(9, CellRequest(slot=0, epoch=0, cells=frozenset({1, 2, 3, 4})))
        world.sim.run(until=world.params.deadline + 0.1)
        # one buffered request -> one expiry, not four
        assert world.ctx.metrics.defense_counts["pending_expired"] == 1
        assert node._slots[0].expiry_timer is None


class TestOverloadAdmission:
    """Bounded pending buffer + retrieval-class admission (I5's node half)."""

    def _retrieval(self, cells) -> CellRequest:
        return CellRequest(
            slot=0, epoch=0, cells=frozenset(cells), priority=PRIORITY_RETRIEVAL
        )

    def _sampling(self, cells) -> CellRequest:
        return CellRequest(slot=0, epoch=0, cells=frozenset(cells))

    def test_pending_limit_sheds_incoming_retrieval(self):
        world = make_world(num_nodes=1, params=small_params(pending_request_limit=2))
        node = world.nodes[0]
        node._on_request(8, self._retrieval({1}))
        node._on_request(9, self._retrieval({2}))
        node._on_request(10, self._retrieval({3}))  # buffer full: shed
        state = node._slots[0]
        assert state.pending_count == 2
        assert node.pending_depth() == 2
        assert world.ctx.metrics.shed_counts["pending_retrieval"] == 1

    def test_sampling_evicts_retrieval_then_sheds_itself(self):
        world = make_world(num_nodes=1, params=small_params(pending_request_limit=2))
        node = world.nodes[0]
        node._on_request(8, self._retrieval({1}))
        node._on_request(9, self._retrieval({2}))
        # sampling at a full buffer evicts the oldest retrieval record
        node._on_request(10, self._sampling({3}))
        node._on_request(11, self._sampling({4}))
        state = node._slots[0]
        assert state.pending_count == 2
        assert world.ctx.metrics.shed_counts["pending_evicted"] == 2
        # no retrieval victim left: sampling itself is finally shed
        node._on_request(12, self._sampling({5}))
        assert state.pending_count == 2
        assert world.ctx.metrics.shed_counts["pending_sampling"] == 1

    def test_evicted_record_never_answered(self):
        world = make_world(num_nodes=1, params=small_params(pending_request_limit=1))
        node = world.nodes[0]
        victim = self._retrieval({1})
        node._on_request(8, victim)
        node._on_request(9, self._sampling({2}))  # evicts the retrieval record
        # the cell arriving later must only answer the live sampling record
        sent = []
        world.network.on_send.append(lambda d: sent.append(d))
        node._slots[0].cells.add_cells({1, 2})
        world.sim.run(until=0.2)
        assert {d.dst for d in sent} == {9}

    def test_queue_depth_gauge_tracks_high_water(self):
        world = make_world(num_nodes=1, params=small_params(pending_request_limit=8))
        node = world.nodes[0]
        for i, src in enumerate((8, 9, 10)):
            node._on_request(src, self._sampling({i + 1}))
        assert world.ctx.metrics.queue_depth_peaks["pending_requests"] == 3

    def test_unconfigured_limit_keeps_legacy_metrics(self):
        world = make_world(num_nodes=1)
        node = world.nodes[0]
        for i, src in enumerate((8, 9, 10)):
            node._on_request(src, self._sampling({i + 1}))
        assert node.pending_depth() == 3
        # no gauge, no sheds: the DENSE_PIN fingerprint must not move
        assert not world.ctx.metrics.queue_depth_peaks
        assert not world.ctx.metrics.shed_counts

    def test_retrieval_admission_bucket_is_aggregate(self):
        world = make_world(
            params=small_params(retrieval_admit_rate=1.0, retrieval_admit_burst=2.0)
        )
        req = self._retrieval({1})
        for src in (4, 5, 6, 7):  # distinct peers share the one bucket
            world.network.send(src, 0, req, req.wire_size(world.params))
        world.sim.run(until=0.1)
        assert world.ctx.metrics.shed_counts["retrieval_admission"] == 2
        assert "rate_limited" not in world.ctx.metrics.defense_counts

    def test_sampling_requests_skip_retrieval_bucket(self):
        world = make_world(
            params=small_params(retrieval_admit_rate=1.0, retrieval_admit_burst=1.0)
        )
        req = self._sampling({1})
        for src in (4, 5, 6, 7):
            world.network.send(src, 0, req, req.wire_size(world.params))
        world.sim.run(until=0.1)
        assert "retrieval_admission" not in world.ctx.metrics.shed_counts
