"""Byte-level 2D Reed-Solomon blob extension and reconstruction tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.erasure.blob import Blob, BlobReconstructionError, ExtendedBlob


def make_blob(rows=4, cols=4, cell_bytes=8, seed=1):
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, 256, size=(rows, cols, cell_bytes), dtype=np.uint8)
    return Blob(cells)


def test_from_bytes_packs_and_pads():
    blob = Blob.from_bytes(b"abcdef", 2, 2, 4)
    assert blob.to_bytes()[:6] == b"abcdef"
    assert blob.to_bytes()[6:] == b"\x00" * 10


def test_from_bytes_overflow_raises():
    with pytest.raises(ValueError):
        Blob.from_bytes(b"x" * 17, 2, 2, 4)


def test_extension_is_systematic():
    blob = make_blob()
    ext = blob.extend()
    assert np.array_equal(ext.cells[:4, :4], blob.cells)
    assert ext.ext_rows == 8 and ext.ext_cols == 8


def test_to_blob_roundtrip():
    blob = make_blob()
    assert np.array_equal(blob.extend().to_blob().cells, blob.cells)


def test_every_row_recovers_from_any_half():
    blob = make_blob()
    ext = blob.extend()
    from repro.erasure.blob import _SymbolCodec

    codec = _SymbolCodec(4, 8, 8)
    for row in (0, 3, 5, 7):
        known = {c: ext.cells[row, c] for c in (1, 2, 6, 7)}
        recovered = codec.decode_line(known)
        assert np.array_equal(recovered, ext.cells[row])


def test_every_column_recovers_from_any_half():
    blob = make_blob()
    ext = blob.extend()
    from repro.erasure.blob import _SymbolCodec

    codec = _SymbolCodec(4, 8, 8)
    for col in (0, 2, 7):
        known = {r: ext.cells[r, col] for r in (0, 4, 5, 6)}
        recovered = codec.decode_line(known)
        assert np.array_equal(recovered, ext.cells[:, col])


def test_product_code_consistency():
    """Parity-of-parity: rows of the extended matrix are codewords even
    in the parity-row region (linearity of the 2D code)."""
    blob = make_blob()
    ext = blob.extend()
    from repro.erasure.blob import _SymbolCodec

    codec = _SymbolCodec(4, 8, 8)
    for row in range(4, 8):  # parity rows
        known = {c: ext.cells[row, c] for c in range(4)}
        recovered = codec.decode_line(known)
        assert np.array_equal(recovered, ext.cells[row])


def test_reconstruct_from_quadrant():
    """The original quadrant (Fig. 3 left) recovers everything."""
    blob = make_blob()
    ext = blob.extend()
    known = {
        r * 8 + c: ext.cell(r, c) for r in range(4) for c in range(4)
    }
    rebuilt = ExtendedBlob.reconstruct(known, 4, 4, 8)
    assert rebuilt == ext


def test_reconstruct_from_scattered_half_rows():
    blob = make_blob(seed=7)
    ext = blob.extend()
    known = {}
    for r in range(8):
        for c in (0, 2, 5, 7):  # any half of each row
            known[r * 8 + c] = ext.cell(r, c)
    assert ExtendedBlob.reconstruct(known, 4, 4, 8) == ext


def test_reconstruct_insufficient_raises():
    blob = make_blob()
    ext = blob.extend()
    # withhold a 5x5 sub-matrix: maximal non-reconstructable pattern
    known = {
        r * 8 + c: ext.cell(r, c)
        for r in range(8)
        for c in range(8)
        if not (r < 5 and c < 5)
    }
    with pytest.raises(BlobReconstructionError):
        ExtendedBlob.reconstruct(known, 4, 4, 8)


def test_reconstruct_rejects_wrong_cell_size():
    with pytest.raises(ValueError):
        ExtendedBlob.reconstruct({0: b"too-short"}, 4, 4, 8)


def test_gf65536_path_for_wide_grids():
    """Grids wider than 255 extended cells switch to 2-byte symbols."""
    rng = np.random.default_rng(3)
    cells = rng.integers(0, 256, size=(2, 130, 4), dtype=np.uint8)
    ext = Blob(cells).extend()  # 260 extended cols > 255
    known = {}
    for r in range(4):
        for c in range(130):
            known[r * 260 + c] = ext.cell(r, c)
    assert ExtendedBlob.reconstruct(known, 2, 130, 4) == ext


def test_odd_cell_size_rejected_for_wide_grids():
    rng = np.random.default_rng(3)
    cells = rng.integers(0, 256, size=(2, 130, 5), dtype=np.uint8)
    with pytest.raises(ValueError):
        Blob(cells).extend()


def test_cell_by_id_matches_coords():
    ext = make_blob().extend()
    assert ext.cell_by_id(8 * 3 + 5) == ext.cell(3, 5)
