"""Distribution/percentile helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import Distribution, percentile, summarize


class TestPercentile:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestDistribution:
    def test_from_optional_separates_misses(self):
        dist = Distribution.from_optional([1.0, None, 2.0, None])
        assert dist.values == [1.0, 2.0]
        assert dist.misses == 2
        assert dist.count == 4

    def test_basic_stats(self):
        dist = Distribution.from_optional([3.0, 1.0, 2.0])
        assert dist.min == 1.0
        assert dist.max == 3.0
        assert dist.median == 2.0
        assert dist.mean == 2.0

    def test_fraction_within_counts_misses(self):
        dist = Distribution.from_optional([1.0, 2.0, None, None])
        assert dist.fraction_within(1.5) == 0.25
        assert dist.fraction_within(10.0) == 0.5

    def test_quantile_with_misses_is_inf(self):
        dist = Distribution.from_optional([1.0, None])
        assert dist.quantile(99.0) == math.inf
        assert dist.quantile(40.0) == 1.0

    def test_p99_without_misses(self):
        dist = Distribution.from_optional([float(i) for i in range(1, 101)])
        assert dist.p99 == pytest.approx(99.01, rel=0.01)

    def test_cdf_monotone_and_complete(self):
        dist = Distribution.from_optional([float(i) for i in range(50)])
        cdf = dist.cdf(points=10)
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_cdf_with_misses_caps_below_one(self):
        dist = Distribution.from_optional([1.0, 2.0, None, None])
        cdf = dist.cdf()
        assert cdf[-1][1] == 0.5

    def test_empty_distribution(self):
        dist = Distribution.from_optional([])
        assert dist.count == 0
        assert math.isnan(dist.mean)

    def test_all_misses(self):
        dist = Distribution.from_optional([None, None])
        assert dist.fraction_within(1.0) == 0.0
        assert dist.quantile(50.0) == math.inf


def test_summarize_mentions_deadline():
    dist = Distribution.from_optional([1.0, 2.0])
    text = summarize(dist, deadline=4.0)
    assert "within 4s" in text
    assert "median" in text


def test_summarize_empty():
    assert summarize(Distribution.from_optional([])) == "no samples"
