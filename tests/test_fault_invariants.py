"""The online invariant checker: holds on real runs, catches violations.

Positive direction: clean runs and heavily faulted runs must complete
with zero violations (the protocol is supposed to stay correct under
any fault mix — faults cost latency, never safety). Negative
direction: deliberately corrupted transitions must raise
``InvariantViolation`` — a checker that can never fire is not a check.
"""

from __future__ import annotations

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.invariants import InvariantViolation
from repro.faults.plan import CrashWindow, FaultPlan, PartitionWindow
from repro.net.transport import Datagram
from repro.params import PandasParams


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=5,
        slots=1,
        num_vertices=400,
        check_invariants=True,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestInvariantsHold:
    def test_clean_run_passes(self):
        scenario = Scenario(make_config()).run()
        assert scenario.invariants.checks_run > 0

    def test_lossy_run_passes(self):
        Scenario(make_config(loss_rate=0.1, faults=FaultPlan(loss=0.1))).run()

    def test_chaotic_run_passes(self):
        plan = FaultPlan(
            loss=0.05,
            duplication=0.05,
            jitter=0.03,
            crashes=(CrashWindow(crash_at=0.3, restart_at=0.8, count=2),),
            partitions=(PartitionWindow(start=0.2, duration=0.5, fraction=0.25),),
        )
        Scenario(make_config(faults=plan)).run()

    def test_multi_slot_run_passes(self):
        Scenario(make_config(slots=2, faults=FaultPlan(loss=0.05))).run()

    def test_fetch_bound_is_generous_but_finite(self):
        scenario = Scenario(make_config()).run()
        bound = scenario.invariants.fetch_bytes_bound()
        observed = max(scenario.metrics.fetch_bytes._data.values())
        assert observed < bound


class TestViolationsCaught:
    def test_sampling_mark_without_cells_raises(self):
        scenario = Scenario(make_config())
        node = scenario.nodes[0]
        node._slot_state(0)  # creates empty cell state: nothing verified
        with pytest.raises(InvariantViolation):
            scenario.metrics.mark_sampling(0, 0, 0.1)

    def test_consolidation_mark_without_lines_raises(self):
        scenario = Scenario(make_config())
        scenario.nodes[1]._slot_state(0)
        with pytest.raises(InvariantViolation):
            scenario.metrics.mark_consolidation(0, 1, 0.1)

    def test_negative_completion_time_raises(self):
        scenario = Scenario(make_config())
        with pytest.raises(InvariantViolation):
            scenario.metrics.mark_sampling(0, 0, -0.5)

    def test_delivery_before_send_raises(self):
        scenario = Scenario(make_config())
        checker = scenario.invariants
        ghost = Datagram(src=0, dst=1, payload=None, size=10, sent_at=99.0)
        with pytest.raises(InvariantViolation):
            checker._on_deliver(ghost)

    def test_excess_fetch_traffic_raises(self):
        scenario = Scenario(make_config()).run()
        bound = scenario.invariants.fetch_bytes_bound()
        scenario.metrics.fetch_bytes.add(0, 3, bound + 1.0)
        with pytest.raises(InvariantViolation):
            scenario.invariants.check_final()

    def test_wrapped_marks_still_record(self):
        """The checker wraps the metrics marks; legitimate completions
        must flow through to the recorder unchanged."""
        scenario = Scenario(make_config()).run()
        sampled = [
            t.sampling
            for t in scenario.metrics.phase_times.values()
            if t.sampling is not None
        ]
        assert sampled  # marks were recorded despite the wrapper
