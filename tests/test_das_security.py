"""Sampling security math (Section 3 of the paper)."""

from __future__ import annotations

import math

import pytest

from repro.das.security import (
    false_positive_probability,
    max_unreconstructable_cells,
    min_reconstructable_cells,
    required_samples,
)


def test_paper_headline_number():
    """73 samples on the 512x512 grid give FP < 1e-9 (Section 3)."""
    assert false_positive_probability(73, 512, 512) < 1e-9


def test_zero_samples_always_pass():
    assert false_positive_probability(0) == 1.0


def test_single_sample_probability():
    # P(miss the withheld 257x257 block with one draw)
    expected = 1 - (257 * 257) / (512 * 512)
    assert false_positive_probability(1) == pytest.approx(expected)


def test_monotone_decreasing_in_samples():
    values = [false_positive_probability(s) for s in (1, 10, 30, 73, 150)]
    assert all(a > b for a, b in zip(values, values[1:], strict=False))


def test_without_replacement_smaller_than_with():
    """The product bound must beat the naive (1-p)^s approximation."""
    s = 50
    naive = (1 - (257 * 257) / (512 * 512)) ** s
    assert false_positive_probability(s) < naive


def test_required_samples_inverts_bound():
    s = required_samples(512, 512, target=1e-9)
    assert false_positive_probability(s, 512, 512) < 1e-9
    assert false_positive_probability(s - 1, 512, 512) >= 1e-9


def test_required_samples_near_paper_value():
    """The community picked 73; the exact inversion is within a couple."""
    assert abs(required_samples(512, 512, 1e-9) - 73) <= 2


def test_required_samples_smaller_grids_need_fewer_cells_fractionally():
    small = required_samples(64, 64, 1e-9)
    large = required_samples(512, 512, 1e-9)
    assert small <= large + 5  # roughly scale-free in the fraction withheld


def test_sampling_everything_is_certain():
    assert false_positive_probability(512 * 512, 512, 512) == 0.0


def test_invalid_inputs():
    with pytest.raises(ValueError):
        false_positive_probability(-1)
    with pytest.raises(ValueError):
        false_positive_probability(10, 7, 512)  # odd dimension
    with pytest.raises(ValueError):
        false_positive_probability(10**9, 512, 512)
    with pytest.raises(ValueError):
        required_samples(512, 512, target=2.0)


def test_reconstruction_geometry_fig3():
    """Fig. 3: minimal recoverable = one quadrant; maximal withheld
    leaves total - (R+1)(C+1)."""
    assert min_reconstructable_cells(512, 512) == 256 * 256
    assert max_unreconstructable_cells(512, 512) == 512 * 512 - 257 * 257


def test_geometry_consistent_with_bound():
    """The FP bound assumes exactly the Fig. 3-right withholding."""
    total = 512 * 512
    withheld = total - max_unreconstructable_cells(512, 512)
    assert withheld == 257 * 257
