"""Availability tracking and reconstruction-closure (peeling) tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.matrix import RowColumnAvailability, cell_coords, cell_id


def test_cell_id_roundtrip():
    assert cell_coords(cell_id(3, 5, 8), 8) == (3, 5)


def test_add_and_membership():
    grid = RowColumnAvailability(4, 4)
    assert grid.add(5)
    assert not grid.add(5)  # duplicate
    assert grid.has(5)
    assert 5 in grid
    assert len(grid) == 1


def test_row_and_col_counts():
    grid = RowColumnAvailability(4, 4)
    grid.add_many([0, 1, 4, 8])  # row 0: cells 0,1; col 0: cells 0,4,8
    assert grid.row_count(0) == 2
    assert grid.col_count(0) == 3
    assert grid.row_cells(0) == [0, 1]
    assert grid.col_cells(0) == [0, 4, 8]


def test_row_reconstructable_at_half():
    grid = RowColumnAvailability(4, 4)
    grid.add_many([0, 1])
    assert grid.row_reconstructable(0)
    assert not grid.row_reconstructable(1)


def test_close_completes_half_full_row():
    grid = RowColumnAvailability(4, 4)
    grid.add_many([0, 1])
    new = grid.close()
    assert new == {2, 3}
    assert grid.row_count(0) == 4


def test_close_cascades_rows_to_columns():
    """Half of each of the first R rows recovers the whole grid
    (Figure 3 left, scaled down)."""
    grid = RowColumnAvailability(4, 4)
    # rows 0 and 1, first two cells each = the original quadrant
    grid.add_many([0, 1, 4, 5])
    grid.close()
    assert grid.fully_available()


def test_close_no_progress_below_threshold():
    grid = RowColumnAvailability(4, 4)
    grid.add(0)
    assert grid.close() == set()
    assert len(grid) == 1


def test_maximal_withholding_blocks_recovery():
    """Everything except an (R+1)x(C+1) sub-matrix is NOT recoverable
    (Figure 3 right, scaled down)."""
    ext = 8  # R = C = 4
    grid = RowColumnAvailability(ext, ext)
    withheld = {(r, c) for r in range(5) for c in range(5)}
    for r in range(ext):
        for c in range(ext):
            if (r, c) not in withheld:
                grid.add(cell_id(r, c, ext))
    assert not grid.recoverable()


def test_one_less_than_maximal_withholding_recovers():
    """Shrinking the withheld square by one row makes it recoverable."""
    ext = 8
    grid = RowColumnAvailability(ext, ext)
    withheld = {(r, c) for r in range(4) for c in range(5)}  # 4x5 only
    for r in range(ext):
        for c in range(ext):
            if (r, c) not in withheld:
                grid.add(cell_id(r, c, ext))
    assert grid.recoverable()


def test_recoverable_does_not_mutate():
    grid = RowColumnAvailability(4, 4)
    grid.add_many([0, 1, 4, 5])  # half of rows 0 and 1: recoverable
    before = len(grid)
    assert grid.recoverable()
    assert len(grid) == before
    empty = RowColumnAvailability(4, 4)
    empty.add(0)
    assert not empty.recoverable()
    assert len(empty) == 1


def test_minimum_grid_size_enforced():
    with pytest.raises(ValueError):
        RowColumnAvailability(1, 4)


@given(st.sets(st.integers(min_value=0, max_value=35), max_size=36))
@settings(max_examples=80)
def test_closure_is_idempotent_and_monotone(cells):
    grid = RowColumnAvailability(6, 6)
    grid.add_many(cells)
    before = len(grid)
    first = grid.close()
    assert len(grid) == before + len(first)
    assert grid.close() == set()  # fixpoint


@given(st.sets(st.integers(min_value=0, max_value=63), max_size=64))
@settings(max_examples=60)
def test_closure_fixpoint_has_no_reconstructable_incomplete_lines(cells):
    """After close(), every row/column is either complete or strictly
    below the reconstruction threshold — otherwise closure stopped
    early."""
    grid = RowColumnAvailability(8, 8)
    grid.add_many(cells)
    grid.close()
    for r in range(8):
        count = grid.row_count(r)
        assert count == 8 or count < 4
    for c in range(8):
        count = grid.col_count(c)
        assert count == 8 or count < 4
