"""Figure-runner and report-layer tests (fast, dense-grid versions)."""

from __future__ import annotations


import pytest

from repro.analysis.stats import Distribution
from repro.experiments.figures import (
    run_adaptive_vs_constant,
    run_baseline_comparison,
    run_fault_sweep,
    run_policy_comparison,
    run_scaling,
    run_table1,
)
from repro.experiments.report import PAPER, format_distribution_row, shape_checks
from repro.params import PandasParams


def dense_params():
    return PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )


NODES = 40


def test_run_policy_comparison_structure():
    results = run_policy_comparison(
        num_nodes=NODES, seed=3, include_block_gossip=True, params=dense_params()
    )
    for name in ("minimal", "single", "redundant"):
        assert name in results
        assert f"{name}:from_seeding" in results
        assert results[name].sampling.count == NODES
        assert results[name].builder_egress_bytes > 0
    assert results["redundant"].block is not None
    # 9b variant measures from seeding: values must not exceed 9c's
    assert (
        results["redundant:from_seeding"].consolidation.median
        <= results["redundant"].consolidation.median
    )


def test_run_table1_rows():
    table = run_table1(num_nodes=NODES, seed=3, params=dense_params())
    assert 1 in table
    round1 = table[1]
    assert round1["cells_requested"][0] > 0
    assert round1["messages_sent"][0] > 0
    # telemetry keys flushed at slot teardown
    assert "replies_in_round" in round1
    assert "duplicates" in round1


def test_run_adaptive_vs_constant_keys():
    results = run_adaptive_vs_constant(num_nodes=NODES, seed=3, params=dense_params())
    assert set(results) == {"adaptive", "constant"}
    assert results["adaptive"].sampling.fraction_within(4.0) >= results[
        "constant"
    ].sampling.fraction_within(4.0) - 0.2


def test_run_baseline_comparison_keys():
    results = run_baseline_comparison(num_nodes=NODES, seed=3, params=dense_params())
    assert set(results) == {"pandas", "gossipsub", "dht", "peerdas"}
    assert results["pandas"].sampling.fraction_within(4.0) == 1.0
    assert results["peerdas"].sampling.fraction_within(4.0) == 1.0


def test_run_size_sweep_is_run_scaling():
    from repro.experiments.figures import run_size_sweep

    assert run_size_sweep is run_scaling


def test_run_scaling_rejects_unknown_system():
    with pytest.raises(ValueError):
        run_scaling(node_counts=(10,), system="carrier-pigeon")


def test_run_scaling_pandas():
    results = run_scaling(
        node_counts=(30, 45), seed=3, system="pandas", params=dense_params()
    )
    assert set(results) == {30, 45}
    assert results[45].sampling.count == 45


def test_run_fault_sweep_dead():
    results = run_fault_sweep(
        fractions=(0.0, 0.5), fault="dead", num_nodes=NODES, seed=3, params=dense_params()
    )
    # live population shrinks with the dead fraction
    assert results[0.0].sampling.count == NODES
    assert results[0.5].sampling.count == NODES // 2


def test_run_fault_sweep_rejects_unknown_fault():
    with pytest.raises(ValueError):
        run_fault_sweep(fractions=(0.0,), fault="gremlins")


class TestReport:
    def test_format_row_with_paper_reference(self):
        dist = Distribution.from_optional([0.5, 1.0, 1.5])
        row = format_distribution_row("redundant", dist, 4.0, "fig9d.redundant")
        assert "median" in row and "paper" in row

    def test_format_row_without_reference(self):
        dist = Distribution.from_optional([0.5])
        row = format_distribution_row("x", dist, None, None)
        assert "paper" not in row

    def test_format_row_all_misses(self):
        dist = Distribution.from_optional([None, None])
        row = format_distribution_row("x", dist, 4.0)
        assert "miss" in row

    def test_paper_constants_sane(self):
        assert PAPER["fig9d.redundant"]["median"] == pytest.approx(0.882)
        assert PAPER["fig15.dead"]["0.8"] == pytest.approx(0.27)

    def test_shape_checks_buffered(self):
        # under pytest, report output goes to a buffer replayed in the
        # terminal summary (see benchmarks/conftest.py)
        from repro.experiments.report import drain_buffer

        drain_buffer()
        shape_checks([("always true", True), ("always false", False)])
        out = "\n".join(drain_buffer())
        assert "[PASS] always true" in out
        assert "[FAIL] always false" in out
