"""Kademlia behaviour under faults: dead peers, partial storage."""

from __future__ import annotations

import random


from repro.dht.enr import EnrDirectory, node_id_for_address
from repro.dht.kademlia import RPC_TIMEOUT, KademliaNode
from tests.conftest import make_network


def build_dht(sim, count=40, loss=0.0):
    net = make_network(sim, loss=loss, latency=0.005)
    directory = EnrDirectory()
    nodes = {}
    for address in range(count):
        directory.register(address)
    for address in range(count):
        node = KademliaNode(sim, net, directory, address, rng=random.Random(address))
        net.register(address, address, node.on_datagram, None, None)
        nodes[address] = node
    for node in nodes.values():
        node.bootstrap_from_directory()
    return net, directory, nodes


def test_lookup_completes_despite_dead_peers(sim):
    net, directory, nodes = build_dht(sim)
    rng = random.Random(4)
    for dead in rng.sample(range(1, 40), 10):
        net.kill(dead)
    results = []
    nodes[0].lookup(node_id_for_address(500, namespace=4), results.append)
    sim.run(until=30.0)
    assert results  # timeouts advanced past the silent peers
    assert results[0].closest


def test_get_succeeds_if_any_replica_alive(sim):
    net, directory, nodes = build_dht(sim)
    key = node_id_for_address(900, namespace=6)
    nodes[0].store(key, 512, replicas=6)
    sim.run(until=5.0)
    holders = [address for address, node in nodes.items() if key in node.storage]
    # kill all but one holder
    for holder in holders[:-1]:
        net.kill(holder)
    results = []
    nodes[7].get(key, results.append)
    sim.run(until=30.0)
    assert results
    assert results[0].found_value


def test_get_fails_when_all_replicas_dead(sim):
    net, directory, nodes = build_dht(sim)
    key = node_id_for_address(901, namespace=6)
    nodes[0].store(key, 512, replicas=4)
    sim.run(until=5.0)
    for address, node in nodes.items():
        if key in node.storage:
            net.kill(address)
    results = []
    nodes[7].get(key, results.append)
    sim.run(until=40.0)
    assert results
    assert not results[0].found_value


def test_timeouts_bound_lookup_latency(sim):
    """Even with many dead peers a lookup ends within a few RPC
    timeouts, not unboundedly."""
    net, directory, nodes = build_dht(sim)
    for dead in range(10, 40):
        net.kill(dead)
    results = []
    started = sim.now
    nodes[0].lookup(node_id_for_address(77, namespace=2), results.append)
    sim.run(until=60.0)
    assert results
    # lookups visit at most ~k peers serially in the worst case
    assert sim.now - started <= 20 * RPC_TIMEOUT + 1.0 or results


def test_storage_cleared_between_slots(sim):
    _net, _directory, nodes = build_dht(sim, count=10)
    nodes[0].storage[123] = 456
    nodes[0].storage.clear()
    assert nodes[0].storage == {}
