"""Field-axiom tests for GF(2^8) and GF(2^16), incl. property-based."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.gf import GF256, GF65536, GaloisField

ELEMS8 = st.integers(min_value=0, max_value=255)
NONZERO8 = st.integers(min_value=1, max_value=255)
ELEMS16 = st.integers(min_value=0, max_value=65535)
NONZERO16 = st.integers(min_value=1, max_value=65535)


def test_unsupported_degree_rejected():
    with pytest.raises(ValueError):
        GaloisField(12)


def test_fields_are_cached():
    assert GF256() is GF256()
    assert GF65536() is GF65536()


def test_add_is_xor():
    gf = GF256()
    assert gf.add(0b1010, 0b0110) == 0b1100


@given(a=ELEMS8, b=ELEMS8)
def test_gf256_mul_commutative(a, b):
    gf = GF256()
    assert gf.mul(a, b) == gf.mul(b, a)


@given(a=ELEMS8, b=ELEMS8, c=ELEMS8)
@settings(max_examples=60)
def test_gf256_mul_associative(a, b, c):
    gf = GF256()
    assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))


@given(a=ELEMS8, b=ELEMS8, c=ELEMS8)
@settings(max_examples=60)
def test_gf256_distributive(a, b, c):
    gf = GF256()
    assert gf.mul(a, b ^ c) == gf.mul(a, b) ^ gf.mul(a, c)


@given(a=NONZERO8)
def test_gf256_inverse(a):
    gf = GF256()
    assert gf.mul(a, gf.inv(a)) == 1


@given(a=ELEMS8, b=NONZERO8)
def test_gf256_div_inverts_mul(a, b):
    gf = GF256()
    assert gf.div(gf.mul(a, b), b) == a


@given(a=NONZERO16)
@settings(max_examples=50)
def test_gf65536_inverse(a):
    gf = GF65536()
    assert gf.mul(a, gf.inv(a)) == 1


@given(a=ELEMS16, b=ELEMS16)
@settings(max_examples=50)
def test_gf65536_mul_commutative(a, b):
    gf = GF65536()
    assert gf.mul(a, b) == gf.mul(b, a)


def test_one_is_multiplicative_identity():
    gf = GF256()
    for a in (0, 1, 2, 77, 255):
        assert gf.mul(a, 1) == a


def test_zero_annihilates():
    gf = GF256()
    for a in (0, 1, 128, 255):
        assert gf.mul(a, 0) == 0


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256().inv(0)


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256().div(5, 0)


def test_pow_matches_repeated_mul():
    gf = GF256()
    acc = 1
    for n in range(8):
        assert gf.pow(3, n) == acc
        acc = gf.mul(acc, 3)


def test_mul_vec_matches_scalar():
    gf = GF256()
    a = np.array([0, 1, 7, 200, 255])
    b = np.array([9, 0, 13, 200, 1])
    out = gf.mul_vec(a, b)
    for i in range(len(a)):
        assert out[i] == gf.mul(int(a[i]), int(b[i]))


def test_scale_vec():
    gf = GF256()
    vec = np.array([0, 1, 2, 3])
    out = gf.scale_vec(5, vec)
    for i in range(4):
        assert out[i] == gf.mul(5, int(vec[i]))


def test_poly_eval_horner():
    gf = GF256()
    coeffs = np.array([7, 0, 1])  # 7 + x^2
    x = 3
    assert gf.poly_eval(coeffs, x) == 7 ^ gf.mul(x, x)
