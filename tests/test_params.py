"""Parameter presets and Section 3's derived quantities."""

from __future__ import annotations

import pytest

from repro.das.security import false_positive_probability
from repro.params import DEADLINE_SECONDS, FetchSchedule, PandasParams


class TestFullParams:
    def test_grid_geometry(self):
        p = PandasParams.full()
        assert (p.base_rows, p.base_cols) == (256, 256)
        assert (p.ext_rows, p.ext_cols) == (512, 512)
        assert p.total_cells == 512 * 512

    def test_cell_and_blob_sizes_match_paper(self):
        p = PandasParams.full()
        assert p.cell_bytes == 560  # 512 B data + 48 B KZG proof
        assert p.blob_bytes == 32 * 1024 * 1024  # the 32 MB blob
        # "(512 x 512) x (512 + 48) = 140 MB"
        assert p.extended_blob_bytes == 512 * 512 * 560

    def test_custody_cells(self):
        """8 rows + 8 columns minus the 64 intersections = 8,128 cells.

        (The paper's prose says 8,176 via '8 x (512-2)', an arithmetic
        slip; 8 x 512 + 8 x (512 - 8) is the consistent count. Both
        round to the ~4.4-4.6 MB the paper reports.)
        """
        p = PandasParams.full()
        assert p.custody_cells == 8 * 512 + 8 * (512 - 8)
        assert 4.4e6 < p.custody_bytes < 4.6e6

    def test_sample_volume_about_40kb(self):
        p = PandasParams.full()
        assert p.samples == 73
        assert p.sample_bytes == 73 * 560  # ~40 KB

    def test_deadline_is_a_third_of_slot(self):
        p = PandasParams.full()
        assert p.deadline == pytest.approx(p.slot_duration / 3)
        assert p.deadline == DEADLINE_SECONDS

    def test_validate_passes(self):
        PandasParams.full().validate()


class TestReducedParams:
    def test_grid_scaled(self):
        p = PandasParams.reduced(8)
        assert p.ext_rows == 64

    def test_security_preserved(self):
        p = PandasParams.reduced(8)
        assert false_positive_probability(p.samples, p.ext_rows, p.ext_cols) < 1e-9

    def test_explicit_sample_override(self):
        p = PandasParams.reduced(8, samples=10)
        assert p.samples == 10

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            PandasParams.reduced(3)

    def test_custody_fraction_preserved(self):
        full = PandasParams.full()
        reduced = PandasParams.reduced(8)
        full_fraction = (full.custody_rows + full.custody_cols) / (full.ext_rows + full.ext_cols)
        red_fraction = (reduced.custody_rows + reduced.custody_cols) / (
            reduced.ext_rows + reduced.ext_cols
        )
        assert red_fraction == pytest.approx(full_fraction)


class TestValidation:
    def test_custody_exceeding_grid(self):
        with pytest.raises(ValueError):
            PandasParams(base_rows=4, base_cols=4, custody_rows=100).validate()

    def test_oversampling(self):
        with pytest.raises(ValueError):
            PandasParams(
                base_rows=2, base_cols=2, custody_rows=1, custody_cols=1, samples=100
            ).validate()


class TestFetchSchedule:
    def test_paper_defaults(self):
        s = FetchSchedule()
        assert [s.timeout(i) for i in (1, 2, 3, 4, 50)] == [0.4, 0.2, 0.1, 0.1, 0.1]
        assert [s.redundancy_for(i) for i in range(1, 8)] == [1, 2, 4, 6, 8, 10, 10]

    def test_rounds_are_one_based(self):
        with pytest.raises(ValueError):
            FetchSchedule().timeout(0)
        with pytest.raises(ValueError):
            FetchSchedule().redundancy_for(0)

    def test_constant_schedule(self):
        s = FetchSchedule.constant(timeout=0.4, redundancy=1)
        assert s.timeout(10) == 0.4
        assert s.redundancy_for(10) == 1

    def test_with_schedule_returns_copy(self):
        p = PandasParams.full()
        q = p.with_schedule(FetchSchedule.constant())
        assert p.fetch_schedule != q.fetch_schedule
        assert q.ext_rows == p.ext_rows
