"""Query-lifecycle completeness: every issued query terminates once.

The fetcher opens a request id on every ``query_issue`` and the trace
must close it in exactly one of ``query_response`` / ``query_timeout``
/ ``query_cancel`` — under clean networks, heavy loss, dynamic faults
and Byzantine peers alike. ``lifecycle_problems`` returns the
violations; an empty list is the invariant.
"""

from __future__ import annotations

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import FaultPlan
from repro.obs import QUERY_TERMINAL_KINDS, TraceRecorder
from repro.obs.timeline import lifecycle_problems, query_lifecycles
from repro.params import PandasParams


def traced_run(seed=9, **overrides):
    rec = TraceRecorder()
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
        tracer=rec,
    )
    defaults.update(overrides)
    Scenario(ScenarioConfig(**defaults)).run()
    return [e.to_dict() for e in rec.events]


def assert_complete(events):
    problems = lifecycle_problems(events)
    assert problems == []
    issued = sum(1 for e in events if e["kind"] == "query_issue")
    closed = sum(1 for e in events if e["kind"] in QUERY_TERMINAL_KINDS)
    assert issued > 0
    assert issued == closed


def test_lifecycle_complete_on_clean_run():
    assert_complete(traced_run())


def test_lifecycle_complete_under_loss_and_faults():
    events = traced_run(
        seed=4,
        loss_rate=0.1,
        faults=FaultPlan.parse("loss=0.1,dup=0.05,crash=2@0.5:2.0,slow=2@0.08"),
    )
    assert_complete(events)
    # loss forces at least some queries to expire unanswered
    assert any(e["kind"] == "query_timeout" for e in events)


def test_lifecycle_complete_under_adversaries():
    events = traced_run(
        seed=5, faults=FaultPlan.parse("corrupt=0.1,withhold=0.1")
    )
    assert_complete(events)


def test_lifecycles_carry_round_and_peer_context():
    events = traced_run()
    lives = [life for life in query_lifecycles(events).values() if life.req > 0]
    assert lives
    for life in lives:
        assert life.outcome in ("response", "timeout", "cancel")
        assert life.peer >= 0
        assert life.round >= 1
        assert life.closed_at is not None
        assert life.closed_at >= life.issued_at
    # at least one query delivered new cells
    assert any(life.new_cells > 0 for life in lives)


def test_problems_detected_on_synthetic_violations():
    events = [
        {"t": 0.0, "slot": 0, "node": 1, "kind": "query_issue", "req": 1},
        {"t": 0.1, "slot": 0, "node": 1, "kind": "query_response", "req": 1},
        {"t": 0.2, "slot": 0, "node": 1, "kind": "query_timeout", "req": 1},
        {"t": 0.3, "slot": 0, "node": 1, "kind": "query_issue", "req": 2},
        {"t": 0.4, "slot": 0, "node": 1, "kind": "query_cancel", "req": 3},
    ]
    problems = lifecycle_problems(events)
    assert any("closed twice" in p for p in problems)
    assert any("never issued" in p for p in problems)
    assert any("never closed" in p for p in problems)


def test_late_replies_are_not_terminals():
    """A reply after the round expired is observability, not a close."""
    events = traced_run(seed=11, loss_rate=0.08)
    late = [e for e in events if e["kind"] == "query_late_reply"]
    for event in late:
        assert "req" not in event  # carries peer context only
    assert_complete(events)
