"""Churn extension: membership turnover and lagged views."""

from __future__ import annotations

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.churn import ChurnScenario
from repro.experiments.scenario import ScenarioConfig
from repro.params import PandasParams


def churn_config(slots=3, **overrides):
    defaults = dict(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(6),
        seed=4,
        slots=slots,
        num_vertices=400,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ChurnScenario(churn_config(), churn_fraction=1.0)
    with pytest.raises(ValueError):
        ChurnScenario(churn_config(), view_lag_slots=-1)


def test_membership_turns_over():
    scenario = ChurnScenario(churn_config(slots=3), churn_fraction=0.2)
    scenario.run()
    assert len(scenario.departed) == 3 * 8  # 20% of 40, after every slot
    assert len(scenario.current_members) == 40  # population size is stable


def test_joiners_participate_in_later_slots():
    scenario = ChurnScenario(churn_config(slots=3), churn_fraction=0.2, view_lag_slots=0)
    scenario.run()
    joiners = [node_id for node_id in scenario.node_ids if node_id > scenario.builder_id]
    assert joiners
    seeded_joiners = [
        node_id
        for node_id in joiners
        if any(
            (slot, node_id) in scenario.metrics.phase_times
            and scenario.metrics.phase_times[(slot, node_id)].seeding is not None
            for slot in (1, 2)
        )
    ]
    assert seeded_joiners  # the builder seeds joiners once they appear


def test_departed_nodes_receive_nothing_after_leaving():
    scenario = ChurnScenario(churn_config(slots=2), churn_fraction=0.2)
    scenario.run()
    left_after_slot0 = scenario._membership_history[0] - scenario._membership_history[1]
    assert left_after_slot0
    for node_id in left_after_slot0:
        # no slot-1 phase marks for nodes that left after slot 0
        times = scenario.metrics.phase_times.get((1, node_id))
        if times is not None:
            assert times.seeding is None


def test_fresh_views_still_complete_sampling():
    scenario = ChurnScenario(churn_config(slots=3), churn_fraction=0.1, view_lag_slots=0)
    scenario.run()
    completion = scenario.sampling_completion_by_slot()
    assert completion[0] > 0.9
    assert all(fraction > 0.7 for fraction in completion.values())


def test_lagged_views_degrade_gracefully():
    """Stale views mean some queries hit departed nodes; completion
    dips but does not collapse at 10% churn (the Figure 15 story in a
    dynamic regime)."""
    fresh = ChurnScenario(churn_config(slots=3), churn_fraction=0.1, view_lag_slots=0)
    fresh.run()
    stale = ChurnScenario(churn_config(slots=3), churn_fraction=0.1, view_lag_slots=2)
    stale.run()
    fresh_completion = fresh.sampling_completion_by_slot()
    stale_completion = stale.sampling_completion_by_slot()
    # slot 2 ran after two churn rounds; the stale-view network has
    # been querying ghosts for two slots
    assert stale_completion[2] <= fresh_completion[2] + 0.05
    assert stale_completion[2] > 0.5


def test_membership_history_tracks_slots():
    scenario = ChurnScenario(churn_config(slots=3), churn_fraction=0.2)
    scenario.run()
    assert len(scenario._membership_history) == 4  # genesis + 3 slots
