"""ProtocolContext slot bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.assignment import AssignmentIndex, CellAssignment
from repro.core.context import ProtocolContext
from repro.crypto.randao import RandaoBeacon
from repro.net.latency import ConstantLatency
from repro.net.transport import Network
from repro.params import PandasParams
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry


@pytest.fixture
def ctx():
    sim = Simulator()
    params = PandasParams.reduced(16, samples=4)
    assignment = CellAssignment(params, RandaoBeacon(1))
    return ProtocolContext(
        sim=sim,
        network=Network(sim, ConstantLatency(0.01, 16), loss_rate=0.0),
        params=params,
        assignment=assignment,
        metrics=MetricsRecorder(),
        rngs=RngRegistry(1),
        index_for_epoch=lambda epoch: AssignmentIndex(assignment, epoch, range(8)),
    )


def test_epoch_of_slot(ctx):
    assert ctx.epoch_of(0) == 0
    assert ctx.epoch_of(31) == 0
    assert ctx.epoch_of(32) == 1


def test_begin_slot_records_start_once(ctx):
    ctx.sim.call_after(5.0, lambda: ctx.begin_slot(0))
    ctx.sim.run()
    ctx.begin_slot(0)  # second call must not overwrite
    assert ctx.slot_start(0) == 5.0


def test_since_slot_start(ctx):
    ctx.begin_slot(0)
    ctx.sim.call_after(1.5, lambda: None)
    ctx.sim.run()
    assert ctx.since_slot_start(0) == pytest.approx(1.5)


def test_unknown_slot_start_defaults_to_zero(ctx):
    assert ctx.slot_start(99) == 0.0


def test_index_provider_used(ctx):
    index = ctx.index_for_epoch(0)
    assert index.custodians(0) is not None
