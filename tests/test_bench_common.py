"""Benchmark-harness configuration helpers."""

from __future__ import annotations

import pytest

from benchmarks.common import baseline_params, bench_nodes, bench_scales, bench_seed, bench_slots


def test_defaults(monkeypatch):
    for var in ("REPRO_BENCH_NODES", "REPRO_BENCH_SCALES", "REPRO_BENCH_SEED",
                "REPRO_BENCH_SLOTS", "REPRO_BENCH_FULL"):
        monkeypatch.delenv(var, raising=False)
    assert bench_nodes() >= 250  # above the line-coverage threshold
    assert bench_slots() == 1
    assert bench_seed() == 7
    assert all(scale >= 250 for scale in bench_scales())


def test_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_NODES", "1234")
    monkeypatch.setenv("REPRO_BENCH_SCALES", "10, 20,30")
    monkeypatch.setenv("REPRO_BENCH_SEED", "99")
    monkeypatch.setenv("REPRO_BENCH_SLOTS", "3")
    assert bench_nodes() == 1234
    assert bench_scales() == [10, 20, 30]
    assert bench_seed() == 99
    assert bench_slots() == 3


def test_baseline_params_reduced_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    params = baseline_params()
    assert params.ext_rows == 128  # 4x-reduced grid (256/4 base rows)
    # custody fraction preserved -> same custodians-per-line scaling
    assert (params.custody_rows + params.custody_cols) / (
        params.ext_rows + params.ext_cols
    ) == pytest.approx(16 / 1024)


def test_baseline_params_full_opt_in(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert baseline_params().ext_rows == 512
