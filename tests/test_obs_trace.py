"""The tracing layer's core guarantees.

The hard requirement (ISSUE: observability) is behavior-neutrality:
a traced run must be bit-identical to an untraced one, pinned here by
``MetricsRecorder.fingerprint()`` equality. The rest of the file
covers the recorder mechanics — ring eviction, kind filtering, sink
streaming — and the serialized formats (JSONL, Chrome trace_event).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.obs import (
    KINDS,
    QUERY_TERMINAL_KINDS,
    CallbackProfiler,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    TraceRecorder,
)
from repro.params import PandasParams


def dense_config(seed=9, **overrides):
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


# ----------------------------------------------------------------------
# recorder mechanics
# ----------------------------------------------------------------------
def test_ring_buffer_evicts_oldest_but_sinks_see_everything():
    sink = MemorySink()
    rec = TraceRecorder(capacity=5, sinks=[sink])
    for i in range(12):
        rec.emit("phase", t=float(i), node=i)
    assert rec.accepted == 12
    assert rec.evicted == 7
    assert [e.node for e in rec.events] == [7, 8, 9, 10, 11]
    assert [e.node for e in sink.events] == list(range(12))


def test_kind_filtering_rejects_before_recording():
    rec = TraceRecorder(kinds=["query_issue"])
    assert rec.enabled("query_issue")
    assert not rec.enabled("net_send")
    assert rec.emit("net_send", t=0.0) is None
    assert rec.emit("query_issue", t=0.0, req=1) is not None
    assert rec.filtered == 1
    assert rec.accepted == 1
    assert rec.counts == {"query_issue": 1}


def test_reserved_payload_fields_rejected():
    """t/slot/node/kind are named parameters of emit(), so a payload
    cannot shadow them — the call itself is rejected."""
    rec = TraceRecorder()
    with pytest.raises(TypeError):
        rec.emit("phase", t=0.0, **{"kind": "sneaky"})


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_request_ids_are_monotonic():
    rec = TraceRecorder()
    assert [rec.next_request_id() for _ in range(3)] == [1, 2, 3]


def test_kind_table_orders_by_frequency():
    rec = TraceRecorder()
    for _ in range(3):
        rec.emit("net_send", t=0.0)
    rec.emit("phase", t=0.0)
    assert rec.kind_table() == [("net_send", 3), ("phase", 1)]


# ----------------------------------------------------------------------
# serialized formats
# ----------------------------------------------------------------------
def test_jsonl_sink_writes_flat_records():
    buf = io.StringIO()
    rec = TraceRecorder(sinks=[JsonlSink(buf)])
    rec.emit("query_issue", t=0.25, slot=0, node=3, req=1, peer=9, round=1, cells=4)
    rec.close()
    record = json.loads(buf.getvalue())
    assert record == {
        "t": 0.25,
        "slot": 0,
        "node": 3,
        "kind": "query_issue",
        "req": 1,
        "peer": 9,
        "round": 1,
        "cells": 4,
    }


def test_chrome_trace_schema_and_span_pairing():
    """Every record carries the trace_event required fields; query
    lifecycle events pair up as async begin/end spans per request id."""
    buf = io.StringIO()
    sink = ChromeTraceSink(buf)
    rec = TraceRecorder(sinks=[sink])
    scenario = Scenario(dense_config(tracer=rec)).run()
    rec.close()
    assert scenario.metrics.phase_times  # the run did something
    document = json.loads(buf.getvalue())
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    begins, ends = {}, {}
    for record in document["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid", "args"} <= set(record)
        assert record["ph"] in ("b", "e", "i")
        if record["ph"] in ("b", "e"):
            assert record["name"] == "query"
            assert record["id"].startswith("0x")
            side = begins if record["ph"] == "b" else ends
            side[record["id"]] = side.get(record["id"], 0) + 1
    assert begins  # queries were traced
    assert begins == ends  # every span opened is closed exactly once
    assert all(count == 1 for count in begins.values())


def test_traced_runs_are_byte_identical():
    """Two identically-seeded traced runs serialize the same JSONL."""

    def run() -> str:
        buf = io.StringIO()
        rec = TraceRecorder(sinks=[JsonlSink(buf)])
        Scenario(dense_config(tracer=rec)).run()
        rec.close()
        return buf.getvalue()

    first, second = run(), run()
    assert first  # non-empty trace
    assert first == second


# ----------------------------------------------------------------------
# the neutrality guarantee
# ----------------------------------------------------------------------
def test_tracing_is_behavior_neutral():
    """fingerprint() is bit-identical with tracing on or off."""
    plain = Scenario(dense_config()).run().metrics.fingerprint()
    traced = (
        Scenario(dense_config(tracer=TraceRecorder()))
        .run()
        .metrics.fingerprint()
    )
    assert plain == traced


def test_tracing_neutral_under_faults():
    faults = "loss=0.1,dup=0.05,crash=2@0.5:1.5,slow=2@0.05"
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.parse(faults)
    plain = Scenario(dense_config(faults=plan)).run().metrics.fingerprint()
    rec = TraceRecorder()
    traced = (
        Scenario(dense_config(faults=FaultPlan.parse(faults), tracer=rec))
        .run()
        .metrics.fingerprint()
    )
    assert plain == traced
    assert rec.counts["fault"] > 0  # the injector really was traced


def test_profiling_is_behavior_neutral():
    plain = Scenario(dense_config()).run().metrics.fingerprint()
    profiler = CallbackProfiler()
    profiled = (
        Scenario(dense_config(profiler=profiler)).run().metrics.fingerprint()
    )
    assert plain == profiled
    assert profiler.events > 0


def test_all_emitted_kinds_are_documented():
    """Whatever a full traced run emits must appear in the catalog."""
    rec = TraceRecorder()
    Scenario(dense_config(tracer=rec)).run()
    assert set(rec.counts) <= set(KINDS)
    assert QUERY_TERMINAL_KINDS <= set(KINDS)
