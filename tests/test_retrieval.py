"""Layer-2 retrieval client tests."""

from __future__ import annotations

import pytest

from repro.core.retrieval import RetrievalClient
from tests.helpers import make_world


def make_world_with_client(**kwargs):
    world = make_world(**kwargs)
    client_id = 1000
    client = RetrievalClient(world.ctx, client_id)
    world.network.register(client_id, len(world.nodes) + 1, client.on_datagram, None, None)
    return world, client


def test_fetch_rows_completes_after_slot():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    results = []
    outcome = client.fetch_lines(0, rows=(2, 5), callback=results.append)
    world.sim.run(until=world.sim.now + 3.0)
    assert results and results[0].complete
    assert outcome.complete
    # both rows fully present: 2 rows x 16 extended cells
    assert len(outcome.cells) == 2 * world.params.ext_cols


def test_fetch_columns():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    outcome = client.fetch_lines(0, cols=(7,))
    world.sim.run(until=world.sim.now + 3.0)
    assert outcome.complete
    assert len(outcome.cells) == world.params.ext_rows


def test_fetch_during_slot_still_completes():
    """Retrieval started at slot time 0.5 s races consolidation and is
    served by buffered (deferred) replies."""
    world, client = make_world_with_client(num_nodes=30)
    world.ctx.begin_slot(0)
    world.builder.seed_slot(0)
    world.sim.run(until=0.5)
    outcome = client.fetch_lines(0, rows=(1,))
    world.sim.run(until=8.0)
    assert outcome.complete


def test_empty_request_rejected():
    world, client = make_world_with_client(num_nodes=30)
    with pytest.raises(ValueError):
        client.fetch_lines(0)


def test_elapsed_recorded():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    outcome = client.fetch_lines(0, rows=(0,))
    world.sim.run(until=world.sim.now + 3.0)
    assert outcome.complete
    assert 0.0 < outcome.elapsed < 3.0


def test_concurrent_retrievals_independent():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    first = client.fetch_lines(0, rows=(0,))
    second = client.fetch_lines(0, cols=(3,))
    world.sim.run(until=world.sim.now + 3.0)
    assert first.complete and second.complete
