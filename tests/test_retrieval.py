"""Layer-2 retrieval client tests."""

from __future__ import annotations

import pytest

from repro.core.retrieval import AggregateRetrievalLoad, RetrievalClient
from tests.helpers import make_world


def make_world_with_client(client_kwargs=None, **kwargs):
    world = make_world(**kwargs)
    client_id = 1000
    client = RetrievalClient(world.ctx, client_id, **(client_kwargs or {}))
    world.network.register(client_id, len(world.nodes) + 1, client.on_datagram, None, None)
    return world, client


def test_fetch_rows_completes_after_slot():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    results = []
    outcome = client.fetch_lines(0, rows=(2, 5), callback=results.append)
    world.sim.run(until=world.sim.now + 3.0)
    assert results and results[0].complete
    assert outcome.complete
    # both rows fully present: 2 rows x 16 extended cells
    assert len(outcome.cells) == 2 * world.params.ext_cols


def test_fetch_columns():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    outcome = client.fetch_lines(0, cols=(7,))
    world.sim.run(until=world.sim.now + 3.0)
    assert outcome.complete
    assert len(outcome.cells) == world.params.ext_rows


def test_fetch_during_slot_still_completes():
    """Retrieval started at slot time 0.5 s races consolidation and is
    served by buffered (deferred) replies."""
    world, client = make_world_with_client(num_nodes=30)
    world.ctx.begin_slot(0)
    world.builder.seed_slot(0)
    world.sim.run(until=0.5)
    outcome = client.fetch_lines(0, rows=(1,))
    world.sim.run(until=8.0)
    assert outcome.complete


def test_empty_request_rejected():
    world, client = make_world_with_client(num_nodes=30)
    with pytest.raises(ValueError):
        client.fetch_lines(0)


def test_elapsed_recorded():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    outcome = client.fetch_lines(0, rows=(0,))
    world.sim.run(until=world.sim.now + 3.0)
    assert outcome.complete
    assert 0.0 < outcome.elapsed < 3.0


def test_concurrent_retrievals_independent():
    world, client = make_world_with_client(num_nodes=30)
    world.run_slot(0)
    first = client.fetch_lines(0, rows=(0,))
    second = client.fetch_lines(0, cols=(3,))
    world.sim.run(until=world.sim.now + 3.0)
    assert first.complete and second.complete


# ----------------------------------------------------------------------
# client-side admission control (max_concurrent / defer_limit)
# ----------------------------------------------------------------------

class TestClientAdmission:
    def test_concurrency_cap_defers_fifo(self):
        world, client = make_world_with_client(
            num_nodes=30, client_kwargs=dict(max_concurrent=1, defer_limit=4)
        )
        world.run_slot(0)
        done = []
        for row in (0, 1, 2):
            client.fetch_lines(0, rows=(row,), callback=done.append)
        assert client.queue_depth == 3  # 1 running + 2 deferred
        assert client.deferred_peak == 2
        world.sim.run(until=world.sim.now + 6.0)
        assert [r.rows for r in done] == [(0,), (1,), (2,)]  # FIFO drain
        assert all(r.complete for r in done)
        assert client.queue_depth == 0
        assert world.ctx.metrics.queue_depth_peaks["retrieval_deferred"] == 2

    def test_defer_limit_sheds_immediately(self):
        world, client = make_world_with_client(
            num_nodes=30, client_kwargs=dict(max_concurrent=1, defer_limit=1)
        )
        world.run_slot(0)
        done = []
        client.fetch_lines(0, rows=(0,), callback=done.append)
        client.fetch_lines(0, rows=(1,), callback=done.append)
        shed = client.fetch_lines(0, rows=(2,), callback=done.append)
        # the shed callback fires synchronously, before any completion
        assert shed.shed and not shed.complete
        assert done == [shed]
        assert client.shed_count == 1
        assert world.ctx.metrics.shed_counts["retrieval_client"] == 1
        world.sim.run(until=world.sim.now + 6.0)
        assert sum(r.complete for r in done) == 2

    def test_unconfigured_client_never_sheds(self):
        world, client = make_world_with_client(num_nodes=30)
        world.run_slot(0)
        results = [client.fetch_lines(0, rows=(r,)) for r in range(6)]
        world.sim.run(until=world.sim.now + 6.0)
        assert all(r.complete and not r.shed for r in results)
        assert client.shed_count == 0

    def test_invalid_admission_knobs_rejected(self):
        world = make_world(num_nodes=30)
        with pytest.raises(ValueError):
            RetrievalClient(world.ctx, 1000, max_concurrent=0)
        with pytest.raises(ValueError):
            RetrievalClient(world.ctx, 1000, defer_limit=-1)


# ----------------------------------------------------------------------
# aggregate fluid-queue model (pure arithmetic, no simulator)
# ----------------------------------------------------------------------

class TestAggregateRetrievalLoad:
    def test_underload_serves_everything(self):
        load = AggregateRetrievalLoad(service_rate=100.0)
        served = load.offer(50.0, 2.0)
        assert served == 100.0
        assert load.backlog == 0.0
        assert load.shed_total == 0.0

    def test_overload_builds_backlog(self):
        load = AggregateRetrievalLoad(service_rate=100.0)
        load.offer(200.0, 1.0)
        assert load.backlog == 100.0
        assert load.peak_backlog == 100.0
        # the backlog drains when load drops below capacity
        load.offer(0.0, 1.0)
        assert load.backlog == 0.0
        assert load.served_total == 200.0
        assert load.peak_backlog == 100.0  # high-water mark sticks

    def test_admit_rate_caps_intake(self):
        load = AggregateRetrievalLoad(service_rate=100.0, admit_rate=50.0)
        load.offer(100.0, 1.0)
        assert load.admitted_total == 50.0
        assert load.shed_admission == 50.0

    def test_max_backlog_sheds_overflow(self):
        load = AggregateRetrievalLoad(service_rate=10.0, max_backlog=20.0)
        load.offer(100.0, 1.0)  # admits 100, serves 10, 90 would queue
        assert load.backlog == 20.0
        assert load.shed_overflow == 70.0

    def test_capacity_override_models_sampling_priority(self):
        load = AggregateRetrievalLoad(service_rate=100.0)
        served = load.offer(50.0, 1.0, capacity=0.0)
        assert served == 0.0
        assert load.backlog == 50.0
        assert load.latency_quantile(0.5) is None  # no capacity left

    def test_latency_quantiles_follow_mm1_sojourn(self):
        load = AggregateRetrievalLoad(service_rate=10.0)
        load.offer(20.0, 1.0)  # backlog 10
        mean = (10.0 + 1.0) / 10.0
        assert load.latency_quantile(0.5) == pytest.approx(mean * 0.6931471805599453)
        assert load.latency_quantile(0.5) < load.latency_quantile(0.99)
        with pytest.raises(ValueError):
            load.latency_quantile(1.0)

    def test_snapshot_totals(self):
        load = AggregateRetrievalLoad(
            service_rate=10.0, admit_rate=50.0, max_backlog=20.0
        )
        load.offer(100.0, 1.0)
        snap = load.snapshot()
        assert snap == {
            "offered": 100.0,
            "admitted": 50.0,
            "served": 10.0,
            "shed_admission": 50.0,
            "shed_overflow": 20.0,
            "backlog": 20.0,
            "peak_backlog": 20.0,
        }
        assert load.shed_total == 70.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregateRetrievalLoad(service_rate=0.0)
        with pytest.raises(ValueError):
            AggregateRetrievalLoad(service_rate=1.0, admit_rate=-1.0)
        with pytest.raises(ValueError):
            AggregateRetrievalLoad(service_rate=1.0, max_backlog=-1.0)
        load = AggregateRetrievalLoad(service_rate=1.0)
        with pytest.raises(ValueError):
            load.offer(-1.0, 1.0)
