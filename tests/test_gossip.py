"""GossipSub overlay: meshes, flooding, dedup."""

from __future__ import annotations

import random

import pytest

from repro.gossip.pubsub import GossipMessage, GossipOverlay
from tests.conftest import make_network


def make_overlay(sim, members=20, degree=4, loss=0.0):
    net = make_network(sim, loss=loss)
    overlay = GossipOverlay(net, random.Random(1), mesh_degree=degree)
    delivered = {}

    def handler(member, message):
        delivered.setdefault(message.msg_id, []).append((member, sim.now))

    for member in range(members):
        net.register(
            member,
            member,
            (lambda m: (lambda d: overlay.on_datagram(m, d)))(member),
            None,
            None,
        )
    overlay.create_topic("t", list(range(members)), handler=handler)
    return net, overlay, delivered


def test_mesh_degree_bounds(sim):
    _net, overlay, _ = make_overlay(sim, members=30, degree=4)
    for member in range(30):
        neighbors = overlay.mesh_neighbors("t", member)
        assert len(neighbors) >= 4  # own grafts plus incoming edges
        assert member not in neighbors


def test_mesh_is_symmetric(sim):
    _net, overlay, _ = make_overlay(sim, members=30)
    for member in range(30):
        for neighbor in overlay.mesh_neighbors("t", member):
            assert member in overlay.mesh_neighbors("t", neighbor)


def test_publish_floods_topic(sim):
    _net, overlay, delivered = make_overlay(sim, members=25)
    overlay.publish(0, "t", "m1", None, 1000, slot=0)
    sim.run(until=2.0)
    receivers = {m for m, _t in delivered["m1"]}
    assert receivers == set(range(1, 25))  # everyone except the publisher


def test_each_member_delivers_once(sim):
    _net, overlay, delivered = make_overlay(sim, members=25)
    overlay.publish(0, "t", "m1", None, 1000, slot=0)
    sim.run(until=2.0)
    receivers = [m for m, _t in delivered["m1"]]
    assert len(receivers) == len(set(receivers))
    assert overlay.duplicates_suppressed > 0  # mesh redundancy existed


def test_multi_hop_latency_accumulates(sim):
    _net, overlay, delivered = make_overlay(sim, members=40, degree=2)
    overlay.publish(0, "t", "m1", None, 1000, slot=0)
    sim.run(until=5.0)
    times = [t for _m, t in delivered["m1"]]
    # with degree 2 over 40 members, some deliveries need several hops
    assert max(times) > 2 * min(times)


def test_external_publisher_uses_fanout(sim):
    net, overlay, delivered = make_overlay(sim, members=20)
    net.register(999, 999, lambda d: None, None, None)  # not subscribed
    overlay.publish(999, "t", "m2", None, 500, slot=0, fanout=3)
    sim.run(until=2.0)
    receivers = {m for m, _t in delivered["m2"]}
    assert len(receivers) == 20  # flooding completes from 3 entry points


def test_gossip_survives_loss_via_reliable_transport(sim):
    _net, overlay, delivered = make_overlay(sim, members=20, loss=0.5)
    overlay.publish(0, "t", "m3", None, 500, slot=0)
    sim.run(until=2.0)
    assert len(delivered["m3"]) == 19  # TCP semantics: loss hidden


def test_distinct_topics_are_isolated(sim):
    net = make_network(sim)
    overlay = GossipOverlay(net, random.Random(2), mesh_degree=3)
    got = []
    for member in range(10):
        net.register(
            member, member,
            (lambda m: (lambda d: overlay.on_datagram(m, d)))(member),
            None, None,
        )
    overlay.create_topic("a", list(range(5)), handler=lambda m, msg: got.append(("a", m)))
    overlay.create_topic("b", list(range(5, 10)), handler=lambda m, msg: got.append(("b", m)))
    overlay.publish(0, "a", "x", None, 100, slot=0)
    sim.run(until=2.0)
    assert all(topic == "a" and member < 5 for topic, member in got)


def test_duplicate_topic_rejected(sim):
    net = make_network(sim)
    overlay = GossipOverlay(net, random.Random(1))
    net.register(0, 0, lambda d: None, None, None)
    overlay.create_topic("t", [0])
    with pytest.raises(ValueError):
        overlay.create_topic("t", [0])


def test_message_size_includes_header():
    msg = GossipMessage("t", "m", None, payload_size=1000)
    assert msg.size > 1000


def test_reset_seen_allows_republication(sim):
    _net, overlay, delivered = make_overlay(sim, members=10)
    overlay.publish(0, "t", "m", None, 100, slot=0)
    sim.run(until=1.0)
    first = len(delivered["m"])
    overlay.reset_seen()
    overlay.publish(0, "t", "m", None, 100, slot=1)
    sim.run(until=2.0)
    assert len(delivered["m"]) == 2 * first


# ----------------------------------------------------------------------
# degree cap (D_hi bound)
# ----------------------------------------------------------------------
def make_capped_overlay(sim, members=40, degree=4, cap=6):
    net = make_network(sim)
    overlay = GossipOverlay(net, random.Random(1), mesh_degree=degree, degree_cap=cap)
    for member in range(members):
        net.register(
            member,
            member,
            (lambda m: (lambda d: overlay.on_datagram(m, d)))(member),
            None,
            None,
        )
    return net, overlay


def test_degree_cap_bounds_realized_distribution(sim):
    _net, overlay = make_capped_overlay(sim, members=40, degree=4, cap=6)
    overlay.create_topic("t", list(range(40)))
    degrees = [len(overlay.mesh_neighbors("t", m)) for m in range(40)]
    assert max(degrees) <= 6, f"degree cap violated: {max(degrees)}"
    assert min(degrees) >= 1  # connected
    # without the cap the symmetric-GRAFT distribution exceeds D_hi
    _net2, uncapped, _ = make_overlay(sim, members=40, degree=4)
    uncapped_degrees = [len(uncapped.mesh_neighbors("t", m)) for m in range(40)]
    assert max(uncapped_degrees) > 6


def test_degree_cap_mesh_still_floods(sim):
    _net, overlay = make_capped_overlay(sim, members=30, degree=4, cap=5)
    delivered = []
    overlay.create_topic(
        "t", list(range(30)), handler=lambda m, msg: delivered.append(m)
    )
    overlay.publish(0, "t", "m1", None, 500, slot=0)
    sim.run(until=3.0)
    assert set(delivered) == set(range(1, 30))


def test_degree_cap_mesh_stays_symmetric(sim):
    _net, overlay = make_capped_overlay(sim, members=40, degree=4, cap=6)
    overlay.create_topic("t", list(range(40)))
    for member in range(40):
        for neighbor in overlay.mesh_neighbors("t", member):
            assert member in overlay.mesh_neighbors("t", neighbor)


def test_degree_cap_below_mesh_degree_rejected(sim):
    net = make_network(sim)
    with pytest.raises(ValueError):
        GossipOverlay(net, random.Random(1), mesh_degree=8, degree_cap=4)
    overlay = GossipOverlay(net, random.Random(1), mesh_degree=8)
    net.register(0, 0, lambda d: None, None, None)
    net.register(1, 1, lambda d: None, None, None)
    with pytest.raises(ValueError):
        overlay.create_topic("t", [0, 1], degree_cap=2)


def test_uncapped_path_unchanged_by_cap_feature(sim):
    """The legacy graft loop must draw the same RNG sequence: replay
    pins of every pre-existing scenario depend on it."""
    net = make_network(sim)
    a = GossipOverlay(net, random.Random(7), mesh_degree=4)
    b = GossipOverlay(net, random.Random(7), mesh_degree=4, degree_cap=None)
    for member in range(20):
        net.register(member, member, lambda d: None, None, None)
    a.create_topic("t", list(range(20)))
    b.create_topic("t", list(range(20)))
    for member in range(20):
        assert a.mesh_neighbors("t", member) == b.mesh_neighbors("t", member)


# ----------------------------------------------------------------------
# bounded dedup state (sustained multi-slot runs)
# ----------------------------------------------------------------------
def test_expire_seen_drops_only_old_slots(sim):
    _net, overlay, delivered = make_overlay(sim, members=10)
    overlay.publish(0, "t", "m0", None, 100, slot=0)
    sim.run(until=1.0)
    overlay.publish(0, "t", "m1", None, 100, slot=1)
    sim.run(until=2.0)
    before = overlay.seen_entries()
    assert before > 0
    overlay.expire_seen(1)
    assert 0 < overlay.seen_entries() < before
    # slot-1 ids retained: republication is still suppressed
    first = len(delivered["m1"])
    overlay.publish(0, "t", "m1", None, 100, slot=1)
    sim.run(until=3.0)
    assert len(delivered["m1"]) == first
    # slot-0 ids expired: the same msg_id floods again
    count0 = len(delivered["m0"])
    overlay.publish(0, "t", "m0", None, 100, slot=0)
    sim.run(until=4.0)
    assert len(delivered["m0"]) == 2 * count0


def test_retire_member_forgets_all_state(sim):
    _net, overlay, delivered = make_overlay(sim, members=12)
    overlay.publish(0, "t", "m0", None, 100, slot=0)
    sim.run(until=1.0)
    assert 3 in overlay._seen
    overlay.retire_member(3)
    assert 3 not in overlay._seen
    assert 3 not in overlay.topic_members("t")
    assert not overlay.mesh_neighbors("t", 3)
    for member in overlay.topic_members("t"):
        assert 3 not in overlay.mesh_neighbors("t", member)


def test_retired_member_receives_no_forwards(sim):
    _net, overlay, delivered = make_overlay(sim, members=12)
    overlay.retire_member(5)
    overlay.publish(0, "t", "m0", None, 100, slot=0)
    sim.run(until=2.0)
    receivers = {m for m, _t in delivered["m0"]}
    assert 5 not in receivers
    assert receivers == set(range(1, 12)) - {5}
