"""A miniature hand-wired PANDAS world for node/builder unit tests.

Unlike the full ``Scenario``, this harness exposes every component
directly (nodes dict, builder, context) over a constant-latency,
optionally lossy network — convenient for poking individual message
paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import AssignmentIndex, CellAssignment
from repro.core.builder import Builder
from repro.core.context import ProtocolContext
from repro.core.node import PandasNode
from repro.core.seeding import RedundantSeeding, SeedingPolicy
from repro.crypto.randao import RandaoBeacon
from repro.net.latency import ConstantLatency
from repro.net.transport import Network
from repro.params import PandasParams
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry


@dataclass
class MiniWorld:
    sim: Simulator
    network: Network
    ctx: ProtocolContext
    nodes: dict[int, PandasNode]
    builder: Builder
    params: PandasParams

    def run_slot(self, slot: int = 0, window: float = 8.0) -> None:
        start = slot * self.params.slot_duration
        if self.sim.now < start:
            self.sim.run(until=start)
        self.ctx.begin_slot(slot)
        self.builder.seed_slot(slot)
        self.sim.run(until=start + window)


def make_world(
    num_nodes: int = 30,
    params: PandasParams | None = None,
    policy: SeedingPolicy | None = None,
    loss_rate: float = 0.0,
    latency: float = 0.01,
    seed: int = 0,
) -> MiniWorld:
    # dense custody (8 of 32 lines per node) so that every line has
    # custodians even with a few dozen nodes — keeps assertions exact
    params = params or PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )
    sim = Simulator()
    rngs = RngRegistry(seed)
    network = Network(
        sim,
        ConstantLatency(latency, num_vertices=num_nodes + 1),
        loss_rate=loss_rate,
        rng=rngs.stream("loss"),
    )
    metrics = MetricsRecorder()
    assignment = CellAssignment(params, RandaoBeacon(seed))
    node_ids = list(range(num_nodes))
    indexes: dict[int, AssignmentIndex] = {}

    def index_for_epoch(epoch: int) -> AssignmentIndex:
        if epoch not in indexes:
            indexes[epoch] = AssignmentIndex(assignment, epoch, node_ids)
        return indexes[epoch]

    ctx = ProtocolContext(
        sim=sim,
        network=network,
        params=params,
        assignment=assignment,
        metrics=metrics,
        rngs=rngs,
        index_for_epoch=index_for_epoch,
        builder_id=num_nodes,
    )
    nodes: dict[int, PandasNode] = {}
    for node_id in node_ids:
        network.register(
            node_id,
            node_id,
            (lambda nid: (lambda dgram: nodes[nid].on_datagram(dgram)))(node_id),
            None,
            None,
        )
        nodes[node_id] = PandasNode(ctx, node_id)
    builder_id = num_nodes
    network.register(builder_id, builder_id, lambda dgram: None, None, None)
    builder = Builder(ctx, builder_id, policy or RedundantSeeding(4))
    return MiniWorld(sim, network, ctx, nodes, builder, params)
