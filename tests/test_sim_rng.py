"""Unit tests for RNG stream management."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_sensitive_to_master():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_sensitive_to_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)


def test_derive_seed_label_boundaries_unambiguous():
    # ("ab", "c") must differ from ("a", "bc")
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_stream_is_cached():
    rngs = RngRegistry(7)
    assert rngs.stream("x") is rngs.stream("x")


def test_streams_are_independent():
    rngs = RngRegistry(7)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_master_seed_reproduces_streams():
    first = [RngRegistry(3).stream("net").random() for _ in range(1)]
    second = [RngRegistry(3).stream("net").random() for _ in range(1)]
    assert first == second


def test_fork_changes_master():
    rngs = RngRegistry(3)
    child = rngs.fork("child")
    assert child.master_seed != rngs.master_seed
    assert child.stream("x").random() != rngs.stream("x").random()


def test_draws_consume_only_their_stream():
    """Consuming one stream must not perturb another (policy-comparison
    experiments rely on this decoupling)."""
    rngs1 = RngRegistry(9)
    rngs1.stream("loss").random()  # consume
    value1 = rngs1.stream("samples").random()

    rngs2 = RngRegistry(9)
    value2 = rngs2.stream("samples").random()
    assert value1 == value2
