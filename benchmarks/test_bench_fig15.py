"""Figure 15: robustness under dead nodes and inconsistent views.

Paper (10,000 nodes, fractions 0-80% in 20% steps): nodes completing
sampling within 4 s degrade from 92% to 27% (dead nodes) and 92% to
25% (out-of-view nodes); beyond ~50% faults, fewer than half the
correct nodes make the deadline — claim C3 below that point.
"""

from __future__ import annotations

from benchmarks.common import bench_nodes, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_fault_sweep
from repro.experiments.report import PAPER, print_header, print_row, shape_checks

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)


def _print_sweep(title, results, paper_key):
    print_row(title)
    paper_row = PAPER[paper_key]
    print_row(f"  {'faulty':>8} {'within 4s':>10} {'median':>10}   paper@10k")
    for fraction in FRACTIONS:
        sampling = results[fraction].sampling
        median = f"{sampling.median * 1e3:7.0f}ms" if sampling.values else "    miss"
        paper_value = paper_row[f"{fraction:.1f}"]
        print_row(
            f"  {fraction:>7.0%} {100 * sampling.fraction_within(4.0):>9.1f}% "
            f"{median:>10}   {100 * paper_value:.0f}%"
        )


def test_fig15a_dead_nodes(benchmark):
    results = run_once(
        benchmark,
        lambda: run_fault_sweep(
            fractions=FRACTIONS,
            fault="dead",
            num_nodes=bench_nodes(),
            slots=bench_slots(),
            seed=bench_seed(),
        ),
    )
    print_header(f"Figure 15a — dead / free-riding nodes ({bench_nodes()} nodes)")
    _print_sweep("sampling completion of correct nodes:", results, "fig15.dead")
    within = {f: results[f].sampling.fraction_within(4.0) for f in FRACTIONS}
    medians = {f: results[f].sampling.median for f in FRACTIONS}
    shape_checks(
        [
            ("fault-free network samples on time", within[0.0] > 0.95),
            (
                "C3: a majority still samples on time at 40% dead nodes",
                within[0.4] > 0.5,
            ),
            (
                "degradation is monotone-ish (more faults, slower medians)",
                medians[0.8] >= medians[0.0],
            ),
        ]
    )
    assert within[0.2] > 0.5


def test_fig15b_out_of_view_nodes(benchmark):
    results = run_once(
        benchmark,
        lambda: run_fault_sweep(
            fractions=FRACTIONS,
            fault="out_of_view",
            num_nodes=bench_nodes(),
            slots=bench_slots(),
            seed=bench_seed(),
        ),
    )
    print_header(f"Figure 15b — out-of-view nodes ({bench_nodes()} nodes)")
    _print_sweep("sampling completion with inconsistent views:", results, "fig15.oov")
    within = {f: results[f].sampling.fraction_within(4.0) for f in FRACTIONS}
    shape_checks(
        [
            ("consistent views sample on time", within[0.0] > 0.95),
            (
                "C3: a majority still samples on time at 40% out-of-view",
                within[0.4] > 0.5,
            ),
            (
                "incomplete views degrade completion",
                within[0.8] <= within[0.0],
            ),
        ]
    )
    assert within[0.2] > 0.5
