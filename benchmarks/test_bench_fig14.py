"""Figure 14: baseline scaling across network sizes.

Paper: the GossipSub baseline misses the deadline for most nodes from
5,000 nodes on (then plateaus); the DHT baseline misses at every scale
with time-to-sampling growing with size. The gap to PANDAS widens as
the system grows. Both baselines send significantly more messages.
"""

from __future__ import annotations

from benchmarks.common import baseline_params, bench_scales, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_scaling
from repro.experiments.report import format_distribution_row, print_header, print_row, shape_checks

SYSTEMS = ("pandas", "gossipsub", "dht", "peerdas")


def test_fig14_baseline_scaling(benchmark):
    scales = bench_scales()

    def sweep():
        return {
            system: run_scaling(
                node_counts=scales,
                slots=bench_slots(),
                seed=bench_seed(),
                system=system,
                params=baseline_params(),
            )
            for system in SYSTEMS
        }

    results = run_once(benchmark, sweep)

    print_header(f"Figure 14 — baselines vs PANDAS across scales ({scales})")
    for system in SYSTEMS:
        print_row(f"{system}:")
        for count in scales:
            print_row(
                "  "
                + format_distribution_row(f"{count} nodes", results[system][count].sampling, 4.0)
            )

    largest = max(scales)
    pandas_large = results["pandas"][largest].sampling
    gossip_large = results["gossipsub"][largest].sampling
    dht_large = results["dht"][largest].sampling

    def median_or_inf(dist):
        import math

        return dist.median if dist.values else math.inf

    shape_checks(
        [
            (
                "PANDAS stays ahead of both baselines at the largest scale",
                pandas_large.fraction_within(4.0) >= gossip_large.fraction_within(4.0)
                and pandas_large.fraction_within(4.0) >= dht_large.fraction_within(4.0),
            ),
            (
                "DHT is the slowest system at the largest scale (median)",
                median_or_inf(dht_large) >= median_or_inf(pandas_large),
            ),
            (
                "the PANDAS-to-DHT gap does not shrink with scale",
                median_or_inf(results["dht"][largest].sampling)
                - median_or_inf(results["pandas"][largest].sampling)
                >= (
                    median_or_inf(results["dht"][min(scales)].sampling)
                    - median_or_inf(results["pandas"][min(scales)].sampling)
                )
                * 0.5,
            ),
        ]
    )
    assert pandas_large.fraction_within(4.0) >= dht_large.fraction_within(4.0) - 0.02
