"""Figure 12: PANDAS vs GossipSub, DHT, and PeerDAS baselines, one scale.

Equal builder egress budget (8x the extended blob) for all four.
Paper (1,000 nodes): 24% of GossipSub nodes and 17% of DHT nodes miss
the 4 s sampling deadline; PANDAS completes everywhere (mean 882 ms).
Messages: PANDAS 1,613 < GossipSub 2,370 < DHT 3,021 sent per node.
"""

from __future__ import annotations

from benchmarks.common import baseline_params, bench_nodes, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_baseline_comparison
from repro.analysis.plotting import ascii_cdf
from repro.experiments.report import (
    format_distribution_row,
    print_block,
    print_header,
    print_row,
    shape_checks,
)

SYSTEMS = ("pandas", "gossipsub", "dht", "peerdas")


def test_fig12_baseline_comparison(benchmark):
    results = run_once(
        benchmark,
        lambda: run_baseline_comparison(
            num_nodes=bench_nodes(),
            slots=bench_slots(),
            seed=bench_seed(),
            params=baseline_params(),
        ),
    )

    print_header(f"Figure 12 — PANDAS vs baselines ({bench_nodes()} nodes)")
    print_row("time to sampling:")
    for name in SYSTEMS:
        print_row(
            format_distribution_row(name, results[name].sampling, 4.0, f"fig12.{name}")
        )
    print_row("")
    print_block(
        ascii_cdf(
            {name: results[name].sampling for name in SYSTEMS},
            deadline=4.0,
            height=12,
        )
    )
    print_row("")
    print_row("fetch messages per node (both directions):")
    for name in SYSTEMS:
        messages = results[name].fetch_messages
        median = f"{messages.median:.0f}" if messages.values else "-"
        print_row(f"  {name:<10} median={median}")

    pandas_dist = results["pandas"].sampling
    gossip_dist = results["gossipsub"].sampling
    dht_dist = results["dht"].sampling
    peerdas_dist = results["peerdas"].sampling
    shape_checks(
        [
            (
                "C5: PANDAS hits the deadline for more nodes than both baselines",
                pandas_dist.fraction_within(4.0) >= gossip_dist.fraction_within(4.0)
                and pandas_dist.fraction_within(4.0) >= dht_dist.fraction_within(4.0),
            ),
            (
                "PANDAS median sampling beats both baselines",
                pandas_dist.median <= gossip_dist.median
                and pandas_dist.median <= dht_dist.median,
            ),
            (
                "PeerDAS column subnets complete sampling for every node",
                peerdas_dist.misses == 0,
            ),
            (
                "PeerDAS deadline coverage beats the DHT's",
                peerdas_dist.fraction_within(4.0) >= dht_dist.fraction_within(4.0),
            ),
            (
                "baselines exchange more messages than PANDAS",
                results["pandas"].fetch_messages.median
                <= results["gossipsub"].fetch_messages.median
                and results["pandas"].fetch_messages.median
                <= results["dht"].fetch_messages.median,
            ),
        ]
    )
    assert pandas_dist.fraction_within(4.0) >= dht_dist.fraction_within(4.0) - 0.02
