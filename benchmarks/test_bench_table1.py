"""Table 1: per-round telemetry of the adaptive fetching algorithm.

Regenerates the table's rows — messages sent, cells requested,
replies received in/after each round, duplicates, reconstructions —
averaged over all nodes, under the redundant seeding strategy.
"""

from __future__ import annotations

from benchmarks.common import bench_nodes, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_table1
from repro.experiments.report import print_header, print_row, shape_checks

# (our stat key, paper row label, paper round-1 value)
ROWS = (
    ("messages_sent", "Messages sent", 341),
    ("cells_requested", "Cells requested", 4174),
    ("replies_in_round", "Replies received in round", 228),
    ("replies_after_round", "Replies received after round", 107),
    ("cells_in_round", "Cells received in round", 2420),
    ("cells_after_round", "Cells received after round", 1128),
    ("duplicates", "Received cells duplicates", 0),
    ("reconstructed", "Cells reconstructed", 615),
)


def test_table1_fetching_rounds(benchmark):
    table = run_once(
        benchmark,
        lambda: run_table1(
            num_nodes=bench_nodes(), slots=bench_slots(), seed=bench_seed()
        ),
    )

    print_header(f"Table 1 — fetching rounds, redundant policy ({bench_nodes()} nodes)")
    rounds = sorted(table)
    header = f"{'row':<30}" + "".join(f"  round {r}" for r in rounds)
    print_row(header + "   (paper round-1 value @1k nodes)")
    for key, label, paper_value in ROWS:
        cells = "".join(
            f"{table[r].get(key, (0.0, 0.0))[0]:>9.0f}" for r in rounds
        )
        print_row(f"{label:<30}{cells}   ({paper_value})")

    def mean(r, key):
        return table.get(r, {}).get(key, (0.0, 0.0))[0]

    shape_checks(
        [
            (
                "requested cells shrink round over round (coverage grows)",
                mean(1, "cells_requested")
                > mean(2, "cells_requested")
                > mean(3, "cells_requested"),
            ),
            (
                "most replies arrive within their round",
                mean(1, "replies_in_round") >= mean(1, "replies_after_round"),
            ),
            (
                "round-1 requests are on the order of the line deficits",
                mean(1, "cells_requested") > 0,
            ),
            (
                "reconstruction contributes cells (erasure code at work)",
                sum(mean(r, "reconstructed") for r in rounds) > 0,
            ),
        ]
    )
    assert mean(1, "cells_requested") > 0
