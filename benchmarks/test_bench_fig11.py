"""Figure 11: adaptive vs constant (non-adaptive) fetching.

Same network and seeding (redundant r=8); the constant strategy keeps
t = 400 ms and k = 1 for every round. Paper: the constant strategy's
time-to-sampling max reaches 4,129 ms (P99 3,513 ms, median 1,546 ms)
and some nodes miss the deadline, while adaptive PANDAS stays at
median 882 ms / max 3,009 ms — fewer messages is the constant
strategy's only win.
"""

from __future__ import annotations

from benchmarks.common import bench_nodes, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_adaptive_vs_constant
from repro.analysis.plotting import ascii_cdf
from repro.experiments.report import (
    format_distribution_row,
    print_block,
    print_header,
    print_row,
    shape_checks,
)


def test_fig11_adaptive_vs_constant(benchmark):
    results = run_once(
        benchmark,
        lambda: run_adaptive_vs_constant(
            num_nodes=bench_nodes(), slots=bench_slots(), seed=bench_seed()
        ),
    )

    print_header(f"Figure 11 — adaptive vs constant fetching ({bench_nodes()} nodes)")
    print_row("time to sampling:")
    for name in ("adaptive", "constant"):
        print_row(
            format_distribution_row(name, results[name].sampling, 4.0, f"fig11.{name}")
        )
    print_row("")
    print_block(
        ascii_cdf(
            {name: results[name].sampling for name in ("adaptive", "constant")},
            deadline=4.0,
            height=12,
        )
    )
    print_row("")
    print_row("fetch messages per node:")
    for name in ("adaptive", "constant"):
        messages = results[name].fetch_messages
        print_row(f"  {name:<10} median={messages.median:.0f} max={messages.max:.0f}")

    adaptive = results["adaptive"].sampling
    constant = results["constant"].sampling
    shape_checks(
        [
            (
                "adaptive completes sampling no slower at the tail (p95)",
                adaptive.quantile(95.0) <= constant.quantile(95.0) * 1.05,
            ),
            (
                "adaptive covers at least as many nodes by the deadline",
                adaptive.fraction_within(4.0) >= constant.fraction_within(4.0) - 0.02,
            ),
            (
                "constant sends fewer messages (its only advantage)",
                results["constant"].fetch_messages.median
                <= results["adaptive"].fetch_messages.median,
            ),
        ]
    )
    # 2% tolerance: at a few hundred nodes the two schedules can tie
    # within a node or two of each other
    assert adaptive.fraction_within(4.0) >= constant.fraction_within(4.0) - 0.02
