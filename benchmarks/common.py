"""Shared benchmark configuration.

Every benchmark reproduces one table or figure from the paper's
evaluation (Section 8) and prints measured-vs-paper rows. Scales are
laptop-friendly by default and grow via environment variables:

- ``REPRO_BENCH_NODES``  — population for single-scale figures
  (default 300; the paper's testbed used 1,000). Populations below
  ~250 leave some grid lines without custodians, so sampling cannot
  complete for a visible fraction of nodes — a physical property of
  the assignment at tiny scale, not a protocol failure;
- ``REPRO_BENCH_SLOTS``  — slots per run (default 1; the paper uses 10);
- ``REPRO_BENCH_SCALES`` — comma-separated node counts for the scaling
  figures (default "250,400"; the paper sweeps 1k-20k);
- ``REPRO_BENCH_SEED``   — master seed (default 7).

Absolute times are not expected to match the paper (smaller population
-> fewer custodians per line -> different contention), but orderings,
deadline hit-rates and crossovers must — each benchmark prints PASS/
FAIL shape checks for exactly those.
"""

from __future__ import annotations

import os

from repro.params import PandasParams

__all__ = [
    "bench_nodes",
    "bench_slots",
    "bench_seed",
    "bench_scales",
    "baseline_params",
    "run_once",
]


def bench_nodes(default: int = 300) -> int:
    return int(os.environ.get("REPRO_BENCH_NODES", default))


def bench_slots(default: int = 1) -> int:
    return int(os.environ.get("REPRO_BENCH_SLOTS", default))


def bench_seed(default: int = 7) -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", default))


def bench_scales(default: str = "250,400") -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SCALES", default)
    return [int(part) for part in raw.split(",") if part.strip()]


def baseline_params() -> PandasParams:
    """Grid used for the baseline-comparison figures (12 and 14).

    Defaults to a 4x-reduced grid (64x64 base, 128x128 extended, 256 parcels, custody
    fraction and the 1e-9 sampling bound preserved): the DHT baseline
    issues one iterative lookup per parcel, which makes the full
    4,096-parcel grid take tens of minutes of wall-clock *to
    simulate* per run. The reduced grid keeps the compared quantities
    (multi-hop routing cost, gossip mesh duplication, equal builder
    budget) while fitting the suite in minutes. Set
    REPRO_BENCH_FULL=1 to run the baselines on the full grid; note
    that at reduced data volumes GossipSub's bandwidth disadvantage
    shrinks, so its gap to PANDAS is understated here and grows with
    REPRO_BENCH_FULL (see EXPERIMENTS.md).
    """
    if os.environ.get("REPRO_BENCH_FULL"):
        return PandasParams.full()
    return PandasParams.reduced(4)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are macro-benchmarks (whole-network simulations); repeating
    them for statistical timing would multiply hours for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
