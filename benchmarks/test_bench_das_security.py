"""Section 3 math: sampling security bound and Figure 3's geometry.

Regenerates the paper's headline derivation: 73 samples on the
512x512 grid bound the availability false-positive probability below
1e-9, and the minimal/maximal reconstruction sets of Figure 3.
"""

from __future__ import annotations

from benchmarks.common import run_once
from repro.das import (
    false_positive_probability,
    max_unreconstructable_cells,
    min_reconstructable_cells,
    required_samples,
)
from repro.experiments.report import print_header, print_row, shape_checks


def test_sampling_security_bound(benchmark):
    def compute():
        return {
            s: false_positive_probability(s, 512, 512)
            for s in (10, 30, 50, 73, 100)
        }

    curve = run_once(benchmark, compute)

    print_header("Section 3 — DAS false-positive bound (512x512 grid)")
    print_row(f"{'samples':>8} {'FP bound':>12}   paper: s=73 -> < 1e-9")
    for s, fp in curve.items():
        print_row(f"{s:>8} {fp:>12.3e}")
    inverted = required_samples(512, 512, 1e-9)
    print_row(f"exact inversion of the 1e-9 target: s = {inverted}")
    print_row(
        f"Fig. 3 geometry: min reconstructable = {min_reconstructable_cells():,} cells, "
        f"max withholdable = {max_unreconstructable_cells():,} cells"
    )
    shape_checks(
        [
            ("FP(73) < 1e-9 (paper's headline)", curve[73] < 1e-9),
            ("bound monotone in samples", curve[10] > curve[30] > curve[73]),
            ("inversion within 2 of the community's 73", abs(inverted - 73) <= 2),
            (
                "Fig. 3: quadrant is minimal",
                min_reconstructable_cells() == 256 * 256,
            ),
            (
                "Fig. 3: 257x257 withheld blocks recovery",
                max_unreconstructable_cells() == 512 * 512 - 257 * 257,
            ),
        ]
    )
    assert curve[73] < 1e-9
