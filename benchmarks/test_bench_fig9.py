"""Figure 9: phase-time distributions for the three seeding policies.

One network, three runs (minimal / single / redundant r=8), full
Danksharding parameters; reports the distributions behind all four
panels:

- 9a time-to-seeding (plus the block-gossip comparison curve),
- 9b time-to-consolidation from seed reception,
- 9c time-to-consolidation from the slot start,
- 9d time-to-sampling (the primary metric: everything within 4 s).
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_nodes, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_policy_comparison
from repro.analysis.plotting import ascii_cdf
from repro.experiments.report import (
    format_distribution_row,
    print_block,
    print_header,
    print_row,
    shape_checks,
)

POLICIES = ("minimal", "single", "redundant")


@pytest.fixture(scope="module")
def policy_results():
    return run_policy_comparison(
        num_nodes=bench_nodes(), slots=bench_slots(), seed=bench_seed()
    )


def test_fig9a_seeding(benchmark, policy_results):
    results = run_once(benchmark, lambda: policy_results)
    print_header(f"Figure 9a — time to seeding ({bench_nodes()} nodes)")
    for name in POLICIES:
        print_row(
            format_distribution_row(name, results[name].seeding, 4.0, f"fig9a.{name}")
        )
    block = results["redundant"].block
    if block is not None:
        print_row(format_distribution_row("block gossip (compare)", block, 4.0))
    shape_checks(
        [
            (
                "all policies seed everyone within 1.5 s",
                all(results[p].seeding.fraction_within(1.5) == 1.0 for p in POLICIES),
            ),
            (
                "heavier policies have equal-or-later seeding tails",
                results["minimal"].seeding.max <= results["redundant"].seeding.max * 1.35,
            ),
        ]
    )
    for name in POLICIES:
        assert results[name].seeding.misses == 0


def test_fig9b_consolidation_from_seeding(benchmark, policy_results):
    results = run_once(benchmark, lambda: policy_results)
    print_header("Figure 9b — time to consolidation, from seed reception")
    for name in POLICIES:
        dist = results[f"{name}:from_seeding"].consolidation
        print_row(format_distribution_row(name, dist, None, f"fig9b.{name}"))
    shape_checks(
        [
            (
                "redundant consolidates no slower than minimal (median)",
                results["redundant:from_seeding"].consolidation.median
                <= results["minimal:from_seeding"].consolidation.median * 1.15,
            )
        ]
    )


def test_fig9c_consolidation_from_start(benchmark, policy_results):
    results = run_once(benchmark, lambda: policy_results)
    print_header("Figure 9c — time to consolidation, from slot start")
    for name in POLICIES:
        print_row(
            format_distribution_row(
                name, results[name].consolidation, 4.0, f"fig9c.{name}"
            )
        )
    shape_checks(
        [
            (
                "every policy consolidates a large majority within 4 s",
                all(
                    results[p].consolidation.fraction_within(4.0) > 0.9
                    for p in POLICIES
                ),
            ),
            (
                "redundant has the fastest median (paper: 869 < 1072 < 1178 ms)",
                results["redundant"].consolidation.median
                <= results["single"].consolidation.median * 1.1
                and results["redundant"].consolidation.median
                <= results["minimal"].consolidation.median * 1.1,
            ),
        ]
    )


def test_fig9d_sampling(benchmark, policy_results):
    results = run_once(benchmark, lambda: policy_results)
    print_header("Figure 9d — time to sampling (primary metric)")
    for name in POLICIES:
        print_row(
            format_distribution_row(name, results[name].sampling, 4.0, f"fig9d.{name}")
        )
    print_row("")
    print_block(
        ascii_cdf(
            {name: results[name].sampling for name in POLICIES},
            deadline=4.0,
            height=12,
        )
    )
    print_row("")
    print_row("builder egress (paper: 36.6 / 149 / 1,208 MB):")
    for name in POLICIES:
        print_row(f"  {name:<10} {results[name].builder_egress_bytes / 1e6:8.1f} MB")
    shape_checks(
        [
            (
                "C1: sampling meets the 4 s deadline for nearly all nodes",
                all(
                    results[p].sampling.fraction_within(4.0) > 0.95 for p in POLICIES
                ),
            ),
            (
                "redundant's median sampling is the fastest",
                results["redundant"].sampling.median
                <= min(
                    results["minimal"].sampling.median,
                    results["single"].sampling.median,
                )
                * 1.1,
            ),
            (
                "egress ordering minimal < single < redundant",
                results["minimal"].builder_egress_bytes
                < results["single"].builder_egress_bytes
                < results["redundant"].builder_egress_bytes,
            ),
        ]
    )
    assert results["redundant"].sampling.fraction_within(4.0) > 0.93
