"""Figure 10: fetch messages and traffic volume per node.

Distributions of the number of messages and bytes (both directions)
each node spends on consolidation + sampling, per seeding policy.
Paper reference: max traffic 2.26 / 2.0 / 1.99 MB for minimal /
single / redundant — well under EIP-7870's bandwidth guidance (C2).
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_nodes, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_policy_comparison
from repro.experiments.report import PAPER, print_header, print_row, shape_checks

POLICIES = ("minimal", "single", "redundant")


@pytest.fixture(scope="module")
def policy_results():
    return run_policy_comparison(
        num_nodes=bench_nodes(),
        slots=bench_slots(),
        seed=bench_seed(),
        include_block_gossip=False,
    )


def test_fig10_messages_and_traffic(benchmark, policy_results):
    results = run_once(benchmark, lambda: policy_results)
    print_header(f"Figure 10 — fetch messages & traffic per node ({bench_nodes()} nodes)")
    print_row(
        f"{'policy':<12} {'msgs median':>12} {'msgs max':>10} "
        f"{'MB median':>10} {'MB max':>8} | paper max MB"
    )
    for name in POLICIES:
        messages = results[name].fetch_messages
        volume = results[name].fetch_bytes
        paper_max = PAPER[f"fig10.{name}"]["max_bytes"] / 1e6
        print_row(
            f"{name:<12} {messages.median:>12.0f} {messages.max:>10.0f} "
            f"{volume.median / 1e6:>10.2f} {volume.max / 1e6:>8.2f} | {paper_max:.2f}"
        )

    # EIP-7870 feasibility: the slot budget at 50/15 Mbps over 12 s
    downlink_budget = 50e6 / 8 * 12
    checks = [
        (
            "C2: max per-node fetch traffic is a few MB (paper: ~2 MB)",
            all(results[p].fetch_bytes.max < 8e6 for p in POLICIES),
        ),
        (
            "traffic fits EIP-7870's per-slot downlink budget",
            all(results[p].fetch_bytes.max < downlink_budget for p in POLICIES),
        ),
        (
            "redundant seeding needs the least fetch traffic",
            results["redundant"].fetch_bytes.median
            <= results["minimal"].fetch_bytes.median * 1.1,
        ),
    ]
    shape_checks(checks)
    assert all(results[p].fetch_bytes.max < downlink_budget for p in POLICIES)
