"""Benchmark-suite pytest glue.

Per-test stdout is captured (and discarded for passing tests), so the
paper-vs-measured tables the benchmarks emit are buffered by
``repro.experiments.report`` and replayed here in the terminal
summary, which pytest never captures.
"""

from __future__ import annotations

from repro.experiments import report


def pytest_terminal_summary(terminalreporter):
    lines = report.drain_buffer()
    if not lines:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper-vs-measured report")
    for line in lines:
        terminalreporter.write_line(line)
