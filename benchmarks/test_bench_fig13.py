"""Figure 13: PANDAS scaling across network sizes.

Paper: with the redundant policy, every node samples within 4 s up to
10,000 nodes; at 20,000 nodes 10% miss (poorly-connected stragglers).
Messages per node grow slowly (1,956 -> 2,443 from 1k to 20k) and
peak traffic stays ~2 MB — claim C4.

The sweep here defaults to laptop scales (REPRO_BENCH_SCALES to grow);
the shape checks assert what must remain true at any scale: deadline
hit-rates stay high and per-node cost grows sub-linearly.
"""

from __future__ import annotations

from benchmarks.common import bench_scales, bench_seed, bench_slots, run_once
from repro.experiments.figures import run_scaling
from repro.experiments.report import format_distribution_row, print_header, print_row, shape_checks


def test_fig13_pandas_scaling(benchmark):
    scales = bench_scales()
    results = run_once(
        benchmark,
        lambda: run_scaling(
            node_counts=scales, slots=bench_slots(), seed=bench_seed(), system="pandas"
        ),
    )

    print_header(f"Figure 13 — PANDAS scaling ({scales} nodes)")
    print_row("time to sampling:")
    for count in scales:
        print_row(format_distribution_row(f"{count} nodes", results[count].sampling, 4.0))
    print_row("")
    print_row(f"{'nodes':>8} {'msgs/node med':>14} {'MB/node med':>12} {'MB/node max':>12}")
    for count in scales:
        messages = results[count].fetch_messages
        volume = results[count].fetch_bytes
        print_row(
            f"{count:>8} {messages.median:>14.0f} {volume.median / 1e6:>12.2f} "
            f"{volume.max / 1e6:>12.2f}"
        )
    print_row("(paper @1k-20k: 1,956-2,443 msgs sent, 1.9-2.4 MB peak)")

    largest, smallest = max(scales), min(scales)
    growth = largest / smallest
    message_growth = (
        results[largest].fetch_messages.median
        / max(1.0, results[smallest].fetch_messages.median)
    )
    shape_checks(
        [
            (
                "C4: >=90% of nodes sample within 4 s at every scale",
                all(results[c].sampling.fraction_within(4.0) >= 0.90 for c in scales),
            ),
            (
                "per-node messages grow sub-linearly with network size",
                message_growth < growth,
            ),
            (
                "per-node peak traffic stays bounded (< 8 MB)",
                all(results[c].fetch_bytes.max < 8e6 for c in scales),
            ),
        ]
    )
    assert results[largest].sampling.fraction_within(4.0) >= 0.90
