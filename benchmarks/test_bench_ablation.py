"""Ablations of PANDAS's design choices (beyond the paper's figures).

The paper motivates three mechanisms qualitatively; these benches
quantify each in isolation:

- **consolidation boost** (Section 6.2): with cb_boost = 0, queries no
  longer prefer peers that were actually seeded the cells, so early
  rounds hit peers that must consolidate first;
- **seeding redundancy r** (Section 6.1): sweep r to see the diminishing
  returns that justify r=8;
- **round-1 timeout** (Section 7): t1 = 400 ms was chosen to cover the
  builder's send-out; shrinking it makes round 1 race the seed stream.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.common import bench_nodes, bench_seed, run_once
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.experiments.report import format_distribution_row, print_header, print_row, shape_checks
from repro.params import FetchSchedule, PandasParams


def _run(params: PandasParams, policy=None, seed=None):
    config = ScenarioConfig(
        num_nodes=bench_nodes(),
        params=params,
        policy=policy if policy is not None else RedundantSeeding(8),
        seed=seed if seed is not None else bench_seed(),
        slots=1,
    )
    return Scenario(config).run()


def test_ablation_consolidation_boost(benchmark):
    def sweep():
        with_boost = _run(PandasParams.full())
        without_boost = _run(replace(PandasParams.full(), cb_boost=0.0))
        return with_boost, without_boost

    with_boost, without_boost = run_once(benchmark, sweep)
    print_header(f"Ablation — consolidation boost map ({bench_nodes()} nodes)")
    print_row(
        format_distribution_row(
            "cb_boost=10,000 (paper)", with_boost.phase_distributions().consolidation, 4.0
        )
    )
    print_row(
        format_distribution_row(
            "cb_boost=0 (ablated)", without_boost.phase_distributions().consolidation, 4.0
        )
    )
    boosted = with_boost.phase_distributions().consolidation
    unboosted = without_boost.phase_distributions().consolidation
    shape_checks(
        [
            (
                "boost does not slow consolidation down",
                boosted.median <= unboosted.median * 1.05,
            ),
            (
                "both variants still meet the deadline for most nodes",
                boosted.fraction_within(4.0) > 0.9
                and unboosted.fraction_within(4.0) > 0.8,
            ),
        ]
    )


def test_ablation_seeding_redundancy(benchmark):
    def sweep():
        return {
            r: _run(PandasParams.full(), policy=RedundantSeeding(r))
            for r in (1, 2, 4, 8)
        }

    results = run_once(benchmark, sweep)
    print_header(f"Ablation — seeding redundancy r ({bench_nodes()} nodes)")
    print_row(f"{'r':>4} {'egress MB':>10} {'sampling median':>16} {'within 4s':>10}")
    for r, scenario in results.items():
        sampling = scenario.sampling_distribution()
        median = f"{sampling.median * 1e3:.0f}ms" if sampling.values else "miss"
        print_row(
            f"{r:>4} {scenario.builder_egress_bytes(0) / 1e6:>10.0f} "
            f"{median:>16} {100 * sampling.fraction_within(4.0):>9.1f}%"
        )
    shape_checks(
        [
            (
                "egress scales linearly with r",
                results[8].builder_egress_bytes(0)
                > 3 * results[2].builder_egress_bytes(0),
            ),
            (
                "higher redundancy never hurts deadline completion",
                results[8].sampling_distribution().fraction_within(4.0)
                >= results[1].sampling_distribution().fraction_within(4.0) - 0.02,
            ),
        ]
    )


def test_ablation_round1_timeout(benchmark):
    def sweep():
        results = {}
        for t1 in (0.1, 0.4, 0.8):
            schedule = FetchSchedule(timeouts=(t1, 0.2, 0.1), redundancy=(1, 2, 4, 6, 8, 10))
            results[t1] = _run(PandasParams.full().with_schedule(schedule))
        return results

    results = run_once(benchmark, sweep)
    print_header(f"Ablation — round-1 timeout t1 ({bench_nodes()} nodes)")
    print_row(f"{'t1':>6} {'sampling median':>16} {'fetch msgs med':>15}")
    for t1, scenario in results.items():
        sampling = scenario.sampling_distribution()
        median = f"{sampling.median * 1e3:.0f}ms" if sampling.values else "miss"
        print_row(
            f"{t1 * 1e3:>4.0f}ms {median:>16} "
            f"{scenario.fetch_message_distribution().median:>15.0f}"
        )
    shape_checks(
        [
            (
                "an early (100 ms) round 1 costs extra messages",
                results[0.1].fetch_message_distribution().median
                >= results[0.4].fetch_message_distribution().median,
            ),
            (
                "the default 400 ms still meets the deadline",
                results[0.4].sampling_distribution().fraction_within(4.0) > 0.95,
            ),
        ]
    )
